//! # Allocation-free join index
//!
//! The shared hashing substrate of both hash-join variants (and, via
//! [`FxBuildHasher`], the aggregation hash tables). It replaces the seed's
//! `HashMap<Vec<i64>, Vec<u32>>` build — one `Vec<i64>` key allocation and
//! one `Vec<u32>` row list per distinct key, all hashed with SipHash —
//! with a flat structure that performs **zero per-row heap allocations**
//! on build or probe.
//!
//! ## Table layout
//!
//! A [`JoinTable`] is three parallel flat arrays plus a bucket directory:
//!
//! ```text
//! buckets: [u32; 2^b]   head entry per bucket (EMPTY = u32::MAX)
//! next:    [u32; n]     bucket chain: entry -> next entry with same bucket
//! keys:    [i64; n * K] the K key columns, packed row-major
//! rows:    [u32; n]     build-row id per entry (absent on the serial
//!                       fast path, where entry == row)
//! ```
//!
//! Bucket chains are threaded through `next` — the classic "array hash
//! join" layout — so rows with equal keys need no per-key list: they
//! simply share a chain. Entries are inserted in **reverse** row order at
//! chain heads, so every chain walks in ascending build-row order; probes
//! therefore yield matches in exactly the order the seed's
//! `Vec<u32>` row lists did, keeping results byte-identical.
//!
//! ## Hashing
//!
//! Keys are hashed with the multiplicative FxHash round
//! (`h = (rotl(h,5) ^ v) * K`, [`FxHasher`]'s core) over the packed
//! `[i64; K]` key — a single multiply for the common one-column `u64`
//! fast path — followed by one avalanche multiply so that the *low* bits
//! (bucket index) and the *high* bits (partition index) are both usable.
//!
//! ## Parallel partitioned build
//!
//! [`JoinIndex::build`] with a [`ParallelConfig`] splits the build input
//! into morsel-sized row chunks, workers hash-partition each chunk by the
//! key's top hash bits ([`crate::parallel::partition`]), per-partition row
//! lists concatenate in chunk order (ascending row ids — the
//! order-deterministic merge contract), and each worker then builds its
//! partition's [`JoinTable`] locally. Probes compute the same hash once
//! and route to the owning partition. Because a key's rows all land in one
//! partition and chains stay ascending, the partitioned index returns
//! matches in the same order as the serial one: parallel and serial
//! execution remain byte-identical.

use std::hash::{BuildHasherDefault, Hasher};

use crate::error::Result;
use crate::parallel::{partition, pool, ParallelConfig};

/// The FxHash multiplier (a.k.a. the Firefox/rustc hash constant).
const FX_K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Chain/bucket terminator.
const EMPTY: u32 = u32::MAX;

/// One FxHash round: fold `v` into `h`.
#[inline(always)]
fn fx_round(h: u64, v: u64) -> u64 {
    (h.rotate_left(5) ^ v).wrapping_mul(FX_K)
}

/// Final avalanche: the raw multiplicative hash mixes *up* (high bits are
/// strong, low bits weak); one xor-shift + multiply makes the low bits —
/// which index the bucket directory — depend on every key bit.
#[inline(always)]
fn avalanche(h: u64) -> u64 {
    let h = (h ^ (h >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 33)
}

/// Hash a packed multi-column integer key.
#[inline]
pub fn hash_key(key: &[i64]) -> u64 {
    let mut h = 0u64;
    for &v in key {
        h = fx_round(h, v as u64);
    }
    avalanche(h)
}

/// Hash row `row` of a set of key columns (same value as [`hash_key`] over
/// the packed key, without materializing it).
#[inline]
pub fn hash_row(key_cols: &[&[i64]], row: usize) -> u64 {
    let mut h = 0u64;
    for c in key_cols {
        h = fx_round(h, c[row] as u64);
    }
    avalanche(h)
}

/// A [`Hasher`] running the FxHash rounds — drop-in replacement for
/// SipHash in `HashMap`/`HashSet` on hot paths that hash small integer or
/// short composite keys (the aggregation group keys).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.hash = fx_round(self.hash, u64::from_le_bytes(c.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut v = [0u8; 8];
            v[..rest.len()].copy_from_slice(rest);
            self.hash = fx_round(self.hash, u64::from_le_bytes(v));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.hash = fx_round(self.hash, i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.hash = fx_round(self.hash, i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.hash = fx_round(self.hash, i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.hash = fx_round(self.hash, i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        avalanche(self.hash)
    }
}

/// `BuildHasher` plugging [`FxHasher`] into std collections.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Hash one row of a set of **group-key columns** — the aggregation-side
/// key codec. Integer-backed columns feed their value, floats their bit
/// pattern (groups compare floats bitwise), strings their bytes plus a
/// `0xff` terminator (so `("ab", "c")` and `("a", "bc")` differ), all
/// through the same FxHash rounds + avalanche as the join-key codec
/// ([`hash_key`]/[`hash_row`]).
///
/// Columns are folded **ints-then-strings** (integer-backed columns in
/// order, then string columns in order) — the exact write sequence the
/// aggregation `GroupKey`'s `Hash` impl performs — so this function,
/// radix partition routing, and the aggregation hash table all agree on
/// one codec: `hash_group_row(cols, r)` equals the `FxHasher` hash of the
/// `GroupKey` built from row `r` (asserted by a unit test in `ops::agg`).
#[inline]
pub fn hash_group_row(group_cols: &[&bdcc_storage::Column], row: usize) -> u64 {
    use bdcc_storage::Column;
    let mut h = FxHasher::default();
    for c in group_cols {
        match c {
            Column::I64 { values, .. } => h.write_u64(values[row] as u64),
            Column::F64(values) => h.write_u64(values[row].to_bits()),
            Column::Str(_) => {}
        }
    }
    for c in group_cols {
        if let Column::Str(values) = c {
            h.write(values[row].as_bytes());
            h.write_u8(0xff);
        }
    }
    h.finish()
}

/// One flat open-addressed-directory + chained-entry hash table (see the
/// module doc for the layout). Covers either the whole build side (serial)
/// or one hash partition of it (parallel).
pub struct JoinTable {
    buckets: Vec<u32>,
    next: Vec<u32>,
    /// Packed keys, `key_width` values per entry.
    keys: Vec<i64>,
    /// Build-row id per entry; `None` on the serial fast path where the
    /// entry index *is* the row id.
    rows: Option<Vec<u32>>,
    key_width: usize,
    mask: u64,
}

impl JoinTable {
    /// Build over `row_ids` (must be ascending; `None` = all rows
    /// `0..len`). Takes the id list by value — the partitioned build hands
    /// each table its partition's list without copying. Exactly three
    /// allocations, none per-row.
    pub fn build(key_cols: &[&[i64]], row_ids: Option<Vec<u32>>) -> JoinTable {
        let key_width = key_cols.len().max(1);
        let n = match &row_ids {
            Some(ids) => ids.len(),
            None => key_cols.first().map(|c| c.len()).unwrap_or(0),
        };
        // Pack the keys row-major (the partition scatter: a sequential
        // gather per key column into one flat buffer).
        let mut keys = Vec::with_capacity(n * key_cols.len());
        match &row_ids {
            Some(ids) => {
                for &r in ids {
                    for c in key_cols {
                        keys.push(c[r as usize]);
                    }
                }
            }
            None => {
                for r in 0..n {
                    for c in key_cols {
                        keys.push(c[r]);
                    }
                }
            }
        }
        // Power-of-two directory at load factor <= 0.5.
        let nbuckets = (n.max(4) * 2).next_power_of_two();
        let mask = nbuckets as u64 - 1;
        let mut buckets = vec![EMPTY; nbuckets];
        let mut next = vec![EMPTY; n];
        // Insert entries in reverse so each chain (head insertion) walks
        // in ascending entry — and therefore ascending row — order.
        for e in (0..n).rev() {
            let h = hash_key(&keys[e * key_width..(e + 1) * key_width]);
            let b = (h & mask) as usize;
            next[e] = buckets[b];
            buckets[b] = e as u32;
        }
        JoinTable { buckets, next, keys, rows: row_ids, key_width, mask }
    }

    /// Entries in this table.
    pub fn len(&self) -> usize {
        self.next.len()
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.next.is_empty()
    }

    /// Walk all build rows whose key equals `key` (pre-hashed to `h`), in
    /// ascending build-row order.
    #[inline]
    pub fn probe<F: FnMut(u32)>(&self, h: u64, key: &[i64], f: &mut F) {
        let mut e = self.buckets[(h & self.mask) as usize];
        while e != EMPTY {
            let i = e as usize;
            let base = i * self.key_width;
            if &self.keys[base..base + self.key_width] == key {
                f(match &self.rows {
                    Some(rows) => rows[i],
                    None => e,
                });
            }
            e = self.next[i];
        }
    }

    /// Does any build row carry `key` (pre-hashed to `h`)? Stops at the
    /// first chain hit — the Semi/Anti probe fast path, which needs only
    /// existence, not the match list.
    #[inline]
    pub fn contains(&self, h: u64, key: &[i64]) -> bool {
        let mut e = self.buckets[(h & self.mask) as usize];
        while e != EMPTY {
            let i = e as usize;
            let base = i * self.key_width;
            if &self.keys[base..base + self.key_width] == key {
                return true;
            }
            e = self.next[i];
        }
        false
    }

    /// Bytes held by the flat arrays (memory-tracker accounting).
    pub fn estimated_bytes(&self) -> u64 {
        (self.buckets.len() * 4
            + self.next.len() * 4
            + self.keys.len() * 8
            + self.rows.as_ref().map(|r| r.len() * 4).unwrap_or(0)) as u64
    }
}

/// Bytes a serial [`JoinTable`] over `rows` rows of `key_width` key
/// columns would hold — for operators that must account for a build
/// *before* running it (the sandwich join registers each group's table
/// with the memory tracker up front). Matches [`JoinTable::estimated_bytes`]
/// for an unpartitioned build.
pub fn estimated_table_bytes(rows: usize, key_width: usize) -> u64 {
    let nbuckets = (rows.max(4) * 2).next_power_of_two();
    (nbuckets * 4 + rows * 4 + rows * key_width.max(1) * 8) as u64
}

/// The build-side index of a hash join: one [`JoinTable`] (serial) or one
/// per hash partition (parallel partitioned build).
pub struct JoinIndex {
    tables: Vec<JoinTable>,
    /// Top hash bits selecting the partition (0 = unpartitioned).
    partition_bits: u32,
    key_width: usize,
}

impl JoinIndex {
    /// Build the index over the build side's key columns. With a parallel
    /// config (threads > 1) and more than one morsel of rows, the build is
    /// hash-partitioned and each partition's table is built by a worker;
    /// otherwise one table is built serially. Both forms return matches in
    /// identical order.
    pub fn build(key_cols: &[&[i64]], parallel: Option<&ParallelConfig>) -> Result<JoinIndex> {
        let n = key_cols.first().map(|c| c.len()).unwrap_or(0);
        let key_width = key_cols.len().max(1);
        match parallel {
            Some(cfg) if cfg.threads > 1 && n > cfg.morsel_rows => {
                let bits = partition::partition_bits_for(cfg.threads);
                // Mutex-wrapped so each worker can *take* its partition's
                // row-id list (tasks are per-partition, so the one lock per
                // table build is noise and the list is never copied).
                let parts: Vec<std::sync::Mutex<Vec<u32>>> =
                    partition::hash_partition_rows(key_cols, bits, cfg)?
                        .into_iter()
                        .map(std::sync::Mutex::new)
                        .collect();
                let tables =
                    pool::run_tasks_labeled(cfg.threads, parts.len(), "join-build", |p| {
                        let ids =
                            std::mem::take(&mut *parts[p].lock().expect("partition poisoned"));
                        Ok(JoinTable::build(key_cols, Some(ids)))
                    })?;
                Ok(JoinIndex { tables, partition_bits: bits, key_width })
            }
            _ => Ok(JoinIndex {
                tables: vec![JoinTable::build(key_cols, None)],
                partition_bits: 0,
                key_width,
            }),
        }
    }

    /// The table owning hash `h`: the partition the build scattered `h`'s
    /// keys into (same routing as [`partition::partition_of`], which maps
    /// the unpartitioned case to the sole table — a probe touches exactly
    /// one partition, so concurrent probe morsels never contend).
    #[inline]
    fn table_for(&self, h: u64) -> &JoinTable {
        &self.tables[partition::partition_of(h, self.partition_bits)]
    }

    /// Call `f` with every build row whose key equals `key`, in ascending
    /// build-row order.
    #[inline]
    pub fn for_each_match<F: FnMut(u32)>(&self, key: &[i64], mut f: F) {
        debug_assert_eq!(key.len(), self.key_width);
        let h = hash_key(key);
        self.table_for(h).probe(h, key, &mut f);
    }

    /// Does any build row carry `key`? First-hit short-circuit — the
    /// existence probe Semi/Anti joins without a residual use.
    #[inline]
    pub fn has_match(&self, key: &[i64]) -> bool {
        debug_assert_eq!(key.len(), self.key_width);
        let h = hash_key(key);
        self.table_for(h).contains(h, key)
    }

    /// Collect every `(probe row, build row)` match pair for rows
    /// `range` of the probe key columns, in probe-row order (build rows
    /// ascending within a probe row) — the order a serial probe loop
    /// yields. One reusable key buffer; no other allocations beyond the
    /// output lists.
    pub fn probe_pairs(
        &self,
        key_cols: &[&[i64]],
        range: std::ops::Range<usize>,
        lidx: &mut Vec<usize>,
        ridx: &mut Vec<u32>,
    ) {
        let mut key = Vec::with_capacity(key_cols.len());
        for row in range {
            key.clear();
            key.extend(key_cols.iter().map(|c| c[row]));
            self.for_each_match(&key, |m| {
                lidx.push(row);
                ridx.push(m);
            });
        }
    }

    /// Existence-only sibling of [`probe_pairs`](Self::probe_pairs):
    /// append to `lidx` every probe row in `range` with at least one
    /// match (first-hit short-circuit per row, no pair lists) — the
    /// Semi/Anti probe kernel.
    pub fn probe_exists(
        &self,
        key_cols: &[&[i64]],
        range: std::ops::Range<usize>,
        lidx: &mut Vec<usize>,
    ) {
        let mut key = Vec::with_capacity(key_cols.len());
        for row in range {
            key.clear();
            key.extend(key_cols.iter().map(|c| c[row]));
            if self.has_match(&key) {
                lidx.push(row);
            }
        }
    }

    /// [`probe_pairs`](Self::probe_pairs) over all `rows`, fanned out to
    /// workers in morsel-sized row ranges when a parallel config makes the
    /// input worth splitting; per-morsel match lists concatenate in morsel
    /// order, so the result is byte-identical to the serial probe.
    pub fn probe_pairs_parallel(
        &self,
        key_cols: &[&[i64]],
        rows: usize,
        parallel: Option<&ParallelConfig>,
    ) -> Result<(Vec<usize>, Vec<u32>)> {
        match parallel {
            Some(cfg) if cfg.worth_splitting(rows) => {
                let ranges = crate::parallel::morsel::split_rows(rows, cfg.morsel_rows);
                let per =
                    pool::run_tasks_labeled(cfg.threads, ranges.len(), "join-probe-pairs", |i| {
                        let (mut l, mut r) = (Vec::new(), Vec::new());
                        self.probe_pairs(key_cols, ranges[i].clone(), &mut l, &mut r);
                        Ok((l, r))
                    })?;
                Ok(crate::parallel::merge::concat_match_lists(per))
            }
            _ => {
                let (mut l, mut r) = (Vec::new(), Vec::new());
                self.probe_pairs(key_cols, 0..rows, &mut l, &mut r);
                Ok((l, r))
            }
        }
    }

    /// Total entries across partitions (== build rows).
    pub fn len(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum()
    }

    /// True when no build rows are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of hash partitions (1 = serial build).
    pub fn partition_count(&self) -> usize {
        self.tables.len()
    }

    /// Bytes held by all partitions' flat arrays.
    pub fn estimated_bytes(&self) -> u64 {
        self.tables.iter().map(|t| t.estimated_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matches(idx: &JoinIndex, key: &[i64]) -> Vec<u32> {
        let mut out = Vec::new();
        idx.for_each_match(key, |r| out.push(r));
        out
    }

    #[test]
    fn single_column_lookup_in_row_order() {
        let keys: Vec<i64> = vec![5, 3, 5, 7, 3, 5];
        let idx = JoinIndex::build(&[&keys], None).unwrap();
        assert_eq!(matches(&idx, &[5]), vec![0, 2, 5]);
        assert_eq!(matches(&idx, &[3]), vec![1, 4]);
        assert_eq!(matches(&idx, &[7]), vec![3]);
        assert_eq!(matches(&idx, &[9]), Vec::<u32>::new());
        assert_eq!(idx.len(), 6);
        assert_eq!(idx.partition_count(), 1);
    }

    #[test]
    fn multi_column_keys_distinguish_rows() {
        let a: Vec<i64> = vec![1, 1, 2, 1];
        let b: Vec<i64> = vec![10, 20, 10, 10];
        let idx = JoinIndex::build(&[&a, &b], None).unwrap();
        assert_eq!(matches(&idx, &[1, 10]), vec![0, 3]);
        assert_eq!(matches(&idx, &[1, 20]), vec![1]);
        assert_eq!(matches(&idx, &[2, 10]), vec![2]);
        assert_eq!(matches(&idx, &[2, 20]), Vec::<u32>::new());
    }

    #[test]
    fn empty_build_side() {
        let keys: Vec<i64> = vec![];
        let idx = JoinIndex::build(&[&keys], None).unwrap();
        assert!(idx.is_empty());
        assert_eq!(matches(&idx, &[1]), Vec::<u32>::new());
    }

    #[test]
    fn dense_sequential_keys_spread_over_buckets() {
        // Sequential keys are the worst case for a raw multiplicative
        // hash's low bits; the avalanche must keep chains short.
        let keys: Vec<i64> = (0..4096).collect();
        let t = JoinTable::build(&[&keys], None);
        let mut max_chain = 0usize;
        for &head in &t.buckets {
            let mut len = 0;
            let mut e = head;
            while e != EMPTY {
                len += 1;
                e = t.next[e as usize];
            }
            max_chain = max_chain.max(len);
        }
        assert!(max_chain <= 8, "degenerate chain of length {max_chain}");
    }

    #[test]
    fn parallel_build_matches_serial_order() {
        let n = 10_000i64;
        let keys: Vec<i64> = (0..n).map(|i| i % 997).collect();
        let serial = JoinIndex::build(&[&keys], None).unwrap();
        let cfg = ParallelConfig { threads: 4, morsel_rows: 512, agg_radix: None };
        let parallel = JoinIndex::build(&[&keys], Some(&cfg)).unwrap();
        assert!(parallel.partition_count() > 1, "build must have partitioned");
        assert_eq!(parallel.len(), serial.len());
        for k in 0..997 {
            assert_eq!(matches(&parallel, &[k]), matches(&serial, &[k]), "key {k}");
        }
    }

    #[test]
    fn one_thread_config_builds_serially() {
        let keys: Vec<i64> = (0..1000).collect();
        let cfg = ParallelConfig { threads: 1, morsel_rows: 16, agg_radix: None };
        let idx = JoinIndex::build(&[&keys], Some(&cfg)).unwrap();
        assert_eq!(idx.partition_count(), 1);
    }

    #[test]
    fn has_match_agrees_with_for_each_match() {
        let keys: Vec<i64> = (0..500).map(|i| i % 37).collect();
        let idx = JoinIndex::build(&[&keys], None).unwrap();
        let cfg = ParallelConfig { threads: 4, morsel_rows: 64, agg_radix: None };
        let part = JoinIndex::build(&[&keys], Some(&cfg)).unwrap();
        for k in -5..45 {
            let hits = !matches(&idx, &[k]).is_empty();
            assert_eq!(idx.has_match(&[k]), hits, "serial key {k}");
            assert_eq!(part.has_match(&[k]), hits, "partitioned key {k}");
        }
    }

    #[test]
    fn probe_pairs_parallel_is_byte_identical_to_serial() {
        let build_keys: Vec<i64> = (0..3000).map(|i| i % 101).collect();
        let probe_keys: Vec<i64> = (0..5000).map(|i| (i * 7) % 150).collect();
        let idx = JoinIndex::build(&[&build_keys], None).unwrap();
        let serial = idx.probe_pairs_parallel(&[&probe_keys], probe_keys.len(), None).unwrap();
        for threads in [2, 4] {
            let cfg = ParallelConfig { threads, morsel_rows: 128, agg_radix: None };
            let par =
                idx.probe_pairs_parallel(&[&probe_keys], probe_keys.len(), Some(&cfg)).unwrap();
            assert_eq!(serial, par, "threads={threads}");
        }
        // And a partitioned index probed in parallel morsels.
        let cfg = ParallelConfig { threads: 4, morsel_rows: 128, agg_radix: None };
        let part = JoinIndex::build(&[&build_keys], Some(&cfg)).unwrap();
        let par = part.probe_pairs_parallel(&[&probe_keys], probe_keys.len(), Some(&cfg)).unwrap();
        assert_eq!(serial, par, "partitioned index, parallel probe");
    }

    #[test]
    fn fx_hasher_hashes_composite_std_keys() {
        use std::collections::HashMap;
        let mut m: HashMap<(Vec<i64>, String), usize, FxBuildHasher> = HashMap::default();
        m.insert((vec![1, 2], "a".into()), 1);
        m.insert((vec![1, 2], "b".into()), 2);
        m.insert((vec![2, 1], "a".into()), 3);
        assert_eq!(m.len(), 3);
        assert_eq!(m[&(vec![1, 2], "a".to_string())], 1);
    }

    #[test]
    fn estimated_bytes_scales_with_rows() {
        let keys: Vec<i64> = (0..1024).collect();
        let idx = JoinIndex::build(&[&keys], None).unwrap();
        // 1024 entries: >= keys (8B) + next (4B) per entry.
        assert!(idx.estimated_bytes() >= 1024 * 12);
    }
}
