//! Plan-time selection pushdown and propagation for the BDCC scheme.
//!
//! For every scan of a clustered table and every dimension use of that
//! table, this module derives the set of *allowed bin numbers* implied by
//! the query's predicates:
//!
//! 1. The use's dimension path is matched against the query's join edges
//!    (a restriction may only propagate from the dimension host to a fact
//!    table if the query actually joins along every foreign key of the
//!    path — Section II's selection-propagation condition).
//! 2. Predicates on the host scan (and semi-join reductions through
//!    further joins *below* the host, e.g. REGION restricting NATION — the
//!    paper's compound-key trick) are evaluated at plan time over the host
//!    table, which is small, yielding the qualifying host rows and hence
//!    the qualifying bins. For large hosts (ORDERS as the D_DATE host) the
//!    sargable predicates on the dimension key are translated analytically
//!    via [`Dimension::bin_range`].
//!
//! The resulting bin sets are compressed into ranges; the physical scan
//!    then selects only count-table groups whose bin prefix intersects.

use std::collections::HashMap;

use bdcc_catalog::{FkId, TableId};
use bdcc_core::{Dimension, KeyValue};
use bdcc_storage::{DataType, StoredTable};

use crate::batch::{Batch, ColMeta};
use crate::enc::{compile_int, compile_str, int_test, str_test};
use crate::error::Result;
use crate::plan::{FkSide, Node};
use crate::pred::{predicates_to_expr, ColPredicate};
use crate::scheme::SchemeDb;

/// Allowed bin ranges (inclusive, at full dimension granularity) per
/// `(scan_id, use_idx)`. Absent key = unrestricted.
pub type Restrictions = HashMap<(usize, usize), Vec<(u64, u64)>>;

/// A join edge extracted from the plan: the foreign key plus the scan ids
/// on the referencing and referenced sides.
#[derive(Debug, Clone)]
struct JoinEdge {
    fk: FkId,
    referencing_scans: Vec<usize>,
    referenced_scans: Vec<usize>,
}

/// Per-scan info extracted from the plan.
#[derive(Debug, Clone)]
struct ScanInfo {
    scan_id: usize,
    table: TableId,
    predicates: Vec<ColPredicate>,
}

/// Hosts larger than this are handled analytically instead of row-wise.
const ROW_EVAL_LIMIT: usize = 1 << 17;

/// Compute all bin restrictions for a query under the BDCC scheme.
pub fn compute_restrictions(plan: &Node, sdb: &SchemeDb) -> Result<Restrictions> {
    let schema = match &sdb.bdcc {
        Some(s) => s,
        None => return Ok(Restrictions::new()),
    };
    let mut scans = Vec::new();
    let mut edges = Vec::new();
    collect(plan, sdb, &mut scans, &mut edges)?;
    let mut out = Restrictions::new();
    for scan in &scans {
        let Some(bt) = schema.tables.get(&scan.table) else { continue };
        for (use_idx, u) in bt.uses.iter().enumerate() {
            let dim = schema.dimension(u.dim);
            // Walk the dimension path along the query's join edges.
            let mut cur: Vec<usize> = vec![scan.scan_id];
            let mut connected = true;
            for &fk in &u.path {
                let mut next = Vec::new();
                for e in &edges {
                    if e.fk == fk && e.referencing_scans.iter().any(|s| cur.contains(s)) {
                        let target = sdb.db.catalog().fk(fk).to_table;
                        for &rs in &e.referenced_scans {
                            if scans.iter().any(|s| s.scan_id == rs && s.table == target) {
                                next.push(rs);
                            }
                        }
                    }
                }
                if next.is_empty() {
                    connected = false;
                    break;
                }
                cur = next;
            }
            if !connected {
                continue;
            }
            // `cur` now holds host-table scans; union their allowed bins.
            let mut union: Option<Vec<(u64, u64)>> = None;
            let mut any_restriction = true;
            for &host_id in &cur {
                let host_scan = scans.iter().find(|s| s.scan_id == host_id).expect("known scan");
                match allowed_bins(host_scan, dim, &scans, &edges, sdb)? {
                    Some(ranges) => {
                        let merged = match union.take() {
                            None => ranges,
                            Some(mut acc) => {
                                acc.extend(ranges);
                                normalize_ranges(acc)
                            }
                        };
                        union = Some(merged);
                    }
                    None => {
                        // One unrestricted host occurrence makes the whole
                        // use unrestricted.
                        any_restriction = false;
                        break;
                    }
                }
            }
            if any_restriction {
                if let Some(ranges) = union {
                    out.insert((scan.scan_id, use_idx), ranges);
                }
            }
        }
    }
    Ok(out)
}

/// Allowed bins of `dim` given the host scan's predicates (plus semi-join
/// reductions through joins below the host). `None` = unrestricted.
fn allowed_bins(
    host_scan: &ScanInfo,
    dim: &Dimension,
    scans: &[ScanInfo],
    edges: &[JoinEdge],
    sdb: &SchemeDb,
) -> Result<Option<Vec<(u64, u64)>>> {
    let host = sdb.db.stored(host_scan.table).expect("host storage attached").clone();
    // Does anything restrict the host at all?
    let has_own_preds = !host_scan.predicates.is_empty();
    let has_semi = edges.iter().any(|e| e.referencing_scans.contains(&host_scan.scan_id));
    if !has_own_preds && !has_semi {
        return Ok(None);
    }
    if host.rows() <= ROW_EVAL_LIMIT {
        // Row-wise: evaluate the full reduction, collect qualifying bins.
        let mask = qualifying_rows(host_scan, &host, scans, edges, sdb, 0)?;
        if mask.iter().all(|&m| m) {
            return Ok(None);
        }
        let key_cols: Vec<_> = dim
            .key
            .iter()
            .map(|k| host.column_by_name(k))
            .collect::<std::result::Result<Vec<_>, _>>()?;
        let mut bins: Vec<u64> = mask
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m)
            .map(|(row, _)| dim.bin_of(&KeyValue(key_cols.iter().map(|c| c.datum(row)).collect())))
            .collect();
        bins.sort_unstable();
        bins.dedup();
        Ok(Some(bins_to_ranges(&bins)))
    } else {
        // Analytic: intersect sargable ranges on the dimension key prefix.
        let mut lo: Option<KeyValue> = None;
        let mut hi: Option<KeyValue> = None;
        let mut restricted = false;
        for p in &host_scan.predicates {
            if p.column == dim.key[0] {
                let (plo, phi) = p.value_range();
                if let Some(v) = plo {
                    restricted = true;
                    let kv = KeyValue(vec![v]);
                    lo = Some(match lo.take() {
                        None => kv,
                        Some(cur) => {
                            if cur.prefix_cmp(&kv) == std::cmp::Ordering::Less {
                                kv
                            } else {
                                cur
                            }
                        }
                    });
                }
                if let Some(v) = phi {
                    restricted = true;
                    let kv = KeyValue(vec![v]);
                    hi = Some(match hi.take() {
                        None => kv,
                        Some(cur) => {
                            if cur.prefix_cmp(&kv) == std::cmp::Ordering::Greater {
                                kv
                            } else {
                                cur
                            }
                        }
                    });
                }
            }
        }
        if !restricted {
            return Ok(None);
        }
        Ok(dim.bin_range(lo.as_ref(), hi.as_ref()).map(|(a, b)| vec![(a, b)]).or(Some(vec![])))
    }
}

/// Boolean mask of host rows passing the scan's own predicates and all
/// semi-join reductions through join edges where the host references a
/// further (small) table.
fn qualifying_rows(
    scan: &ScanInfo,
    stored: &StoredTable,
    scans: &[ScanInfo],
    edges: &[JoinEdge],
    sdb: &SchemeDb,
    depth: usize,
) -> Result<Vec<bool>> {
    let rows = stored.rows();
    let mut mask = vec![true; rows];
    if rows == 0 || depth > 4 {
        return Ok(mask);
    }
    // Own predicates, evaluated one predicate at a time over the stored
    // columns *borrowed in place* — a plan-time reduction must not copy a
    // host column per qualifying pass. Each sargable predicate compiles to
    // the same flat test the scan residual kernels use; shapes the tests
    // cannot express (float comparisons, type mismatches) fall back to the
    // expression interpreter over just that predicate's column.
    for p in &scan.predicates {
        let idx = stored.column_index(&p.column)?;
        let col = stored.column(idx)?;
        let dt = stored.schema().columns[idx].data_type;
        let mut applied = false;
        match dt {
            DataType::Int | DataType::Date => {
                if let Some(t) = compile_int(&p.kind) {
                    for (m, v) in mask.iter_mut().zip(col.as_i64()?) {
                        *m = *m && int_test(&t, *v);
                    }
                    applied = true;
                }
            }
            DataType::Str => {
                if let Some(t) = compile_str(&p.kind) {
                    for (m, v) in mask.iter_mut().zip(col.as_str()?) {
                        *m = *m && str_test(&t, v);
                    }
                    applied = true;
                }
            }
            DataType::Float => {}
        }
        if !applied {
            let expr = predicates_to_expr(std::slice::from_ref(p)).expect("one predicate");
            let metas = vec![ColMeta::new(&p.column, dt)];
            let batch = Batch::new(vec![(**col).clone()]);
            let keep = expr.bind(&metas)?.eval_bool(&batch)?;
            for (m, k) in mask.iter_mut().zip(&keep) {
                *m = *m && *k;
            }
        }
    }
    // Semi-join reductions: host references another scanned table.
    for e in edges {
        if !e.referencing_scans.contains(&scan.scan_id) {
            continue;
        }
        let fk = sdb.db.catalog().fk(e.fk);
        if fk.from_table != scan.table {
            continue;
        }
        for &ref_id in &e.referenced_scans {
            let Some(ref_scan) = scans.iter().find(|s| s.scan_id == ref_id) else { continue };
            if ref_scan.table != fk.to_table {
                continue;
            }
            let ref_stored = sdb.db.stored(ref_scan.table).expect("attached");
            if ref_stored.rows() > ROW_EVAL_LIMIT {
                continue;
            }
            let ref_mask = qualifying_rows(ref_scan, ref_stored, scans, edges, sdb, depth + 1)?;
            if ref_mask.iter().all(|&m| m) {
                continue;
            }
            // Reduce host rows through the FK lookup.
            let host_rows = bdcc_core::resolve_host_rows(&sdb.db, scan.table, &[e.fk])?;
            for (m, &target) in mask.iter_mut().zip(&host_rows) {
                *m = *m && ref_mask[target as usize];
            }
        }
    }
    Ok(mask)
}

/// Sorted distinct bins → inclusive ranges.
pub fn bins_to_ranges(bins: &[u64]) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = Vec::new();
    for &b in bins {
        match out.last_mut() {
            Some((_, hi)) if *hi + 1 == b => *hi = b,
            _ => out.push((b, b)),
        }
    }
    out
}

/// Sort and merge overlapping/adjacent ranges.
pub fn normalize_ranges(mut ranges: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    ranges.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::new();
    for (lo, hi) in ranges {
        match out.last_mut() {
            Some((_, phi)) if lo <= phi.saturating_add(1) => *phi = (*phi).max(hi),
            _ => out.push((lo, hi)),
        }
    }
    out
}

/// Is `v` inside any range?
pub fn ranges_contain(ranges: &[(u64, u64)], v: u64) -> bool {
    ranges
        .binary_search_by(|&(lo, hi)| {
            if v < lo {
                std::cmp::Ordering::Greater
            } else if v > hi {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        })
        .is_ok()
}

fn collect(
    node: &Node,
    sdb: &SchemeDb,
    scans: &mut Vec<ScanInfo>,
    edges: &mut Vec<JoinEdge>,
) -> Result<()> {
    match node {
        Node::Scan { scan_id, table, predicates, .. } => {
            let id = sdb.db.catalog().table_id(table)?;
            scans.push(ScanInfo { scan_id: *scan_id, table: id, predicates: predicates.clone() });
        }
        Node::Filter { input, .. }
        | Node::Project { input, .. }
        | Node::Aggregate { input, .. }
        | Node::Sort { input, .. }
        | Node::Limit { input, .. } => collect(input, sdb, scans, edges)?,
        Node::Join { left, right, fk, .. } => {
            collect(left, sdb, scans, edges)?;
            collect(right, sdb, scans, edges)?;
            if let Some((name, side)) = fk {
                let fk_id = sdb.db.catalog().fks().iter().find(|f| &f.name == name).map(|f| f.id);
                if let Some(fk_id) = fk_id {
                    let (l, r) = (left.scan_ids(), right.scan_ids());
                    let (referencing, referenced) = match side {
                        FkSide::Left => (l, r),
                        FkSide::Right => (r, l),
                    };
                    edges.push(JoinEdge {
                        fk: fk_id,
                        referencing_scans: referencing,
                        referenced_scans: referenced,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_compression() {
        assert_eq!(bins_to_ranges(&[1, 2, 3, 7, 9, 10]), vec![(1, 3), (7, 7), (9, 10)]);
        assert_eq!(bins_to_ranges(&[]), vec![]);
        assert_eq!(
            normalize_ranges(vec![(5, 8), (0, 2), (3, 4), (10, 11)]),
            vec![(0, 8), (10, 11)]
        );
    }

    #[test]
    fn range_membership() {
        let rs = vec![(1, 3), (7, 7), (9, 10)];
        assert!(ranges_contain(&rs, 2));
        assert!(ranges_contain(&rs, 7));
        assert!(!ranges_contain(&rs, 5));
        assert!(!ranges_contain(&rs, 11));
        assert!(!ranges_contain(&[], 0));
    }
}
