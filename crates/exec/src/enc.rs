//! Compression-aware predicate kernels for scans.
//!
//! When a table carries block encodings (see `bdcc_storage::encode`), a
//! [`ScanKernel`] evaluates the scan's sargable predicates directly on the
//! encoded blocks instead of slicing raw columns first:
//!
//! * **Dictionary blocks** — the predicate is evaluated once per distinct
//!   dictionary entry; rows then compare bit-packed codes against the match
//!   set. A constant absent from a block's dict kills the whole block
//!   without touching a single row (the *dict-miss* skip).
//! * **FOR blocks** — pruned via the block's MinMax stats without
//!   unpacking when the predicate's range covers the whole block; otherwise
//!   values unpack on the fly (`min + delta`).
//! * **RLE blocks** — the predicate runs once per run, and the verdict is
//!   painted over the run's row span.
//! * **Constant blocks** (`min == max` in the MinMax stats) decide in O(1)
//!   whatever their physical encoding, including raw.
//!
//! Rows surviving all predicates are **materialized late**: the scan
//! gathers the projection from the resident raw columns only for those
//! rows, so downstream operators never see encoded data and results are
//! byte-identical to the raw path.
//!
//! # Fallback contract
//!
//! [`ScanKernel::try_new`] returns `None` — and the scan keeps its
//! pre-existing slice-then-residual path verbatim — unless the table has
//! encodings *and every* predicate is kernel-supported with exactly the
//! residual expression's semantics: `i64` comparisons on integer-backed
//! columns, string comparisons and `LIKE` on string columns, `IN` with the
//! residual's datum filtering. Predicates that would make the residual
//! *error* (e.g. `LIKE` on an integer column, a float-typed constant
//! against a string column) are unsupported, so the error still surfaces
//! through the fallback path. Float-column predicates always fall back.

use bdcc_storage::{BlockEncoding, BlockStats, ColumnBlockStats, DataType, Datum, StoredTable};

use crate::error::Result;
use crate::expr::LikePattern;
use crate::pred::{ColPredicate, PredKind};

/// Outcome of evaluating one block (or a sub-range of one) against every
/// predicate of a scan.
#[derive(Debug, PartialEq, Eq)]
pub enum BlockVerdict {
    /// Eliminated from metadata alone — a dictionary miss or a constant
    /// block's stats — without evaluating any row.
    SkipNoRows,
    /// Every row was eliminated by per-row evaluation.
    Skip,
    /// Every row of the range survives: slice, no gather needed.
    All,
    /// The surviving absolute row indices (strictly increasing, a proper
    /// non-empty subset of the range).
    Rows(Vec<usize>),
}

/// Compiled predicate tests over one scan's predicate list. Built once per
/// scan; [`eval_block`](Self::eval_block) runs once per surviving block.
pub struct ScanKernel {
    /// `(column index, compiled test)` in the scan's predicate order.
    preds: Vec<(usize, PredTest)>,
}

enum PredTest {
    Int(IntTest),
    Str(StrTest),
}

pub(crate) enum IntTest {
    Eq(i64),
    Ne(i64),
    /// Normalized inclusive bounds; `lo > hi` matches nothing.
    Range {
        lo: i64,
        hi: i64,
    },
    /// Sorted distinct list (the residual's `IN` set after `as_int`).
    In(Vec<i64>),
}

pub(crate) enum StrTest {
    Eq(String),
    Ne(String),
    Range {
        lo: Option<(String, bool)>,
        hi: Option<(String, bool)>,
    },
    /// Sorted distinct list (the residual's `IN` set after `as_str`).
    In(Vec<String>),
    Like(LikePattern),
    NotLike(LikePattern),
}

pub(crate) fn int_test(t: &IntTest, v: i64) -> bool {
    match t {
        IntTest::Eq(c) => v == *c,
        IntTest::Ne(c) => v != *c,
        IntTest::Range { lo, hi } => *lo <= v && v <= *hi,
        IntTest::In(set) => set.binary_search(&v).is_ok(),
    }
}

pub(crate) fn str_test(t: &StrTest, s: &str) -> bool {
    match t {
        StrTest::Eq(c) => s == c,
        StrTest::Ne(c) => s != c,
        StrTest::Range { lo, hi } => {
            if let Some((b, inclusive)) = lo {
                if !(if *inclusive { s >= b.as_str() } else { s > b.as_str() }) {
                    return false;
                }
            }
            if let Some((b, inclusive)) = hi {
                if !(if *inclusive { s <= b.as_str() } else { s < b.as_str() }) {
                    return false;
                }
            }
            true
        }
        StrTest::In(set) => set.binary_search_by(|e| e.as_str().cmp(s)).is_ok(),
        StrTest::Like(p) => p.matches(s),
        StrTest::NotLike(p) => !p.matches(s),
    }
}

/// `Some(v)` only for the datums the residual's `i64` comparison accepts.
fn int_const(d: &Datum) -> Option<i64> {
    match d {
        Datum::Int(v) | Datum::Date(v) => Some(*v),
        _ => None,
    }
}

pub(crate) fn compile_int(kind: &PredKind) -> Option<IntTest> {
    Some(match kind {
        PredKind::Eq(d) => IntTest::Eq(int_const(d)?),
        PredKind::Ne(d) => IntTest::Ne(int_const(d)?),
        PredKind::Range { lo, lo_inclusive, hi, hi_inclusive } => {
            // Normalize to inclusive bounds. `col > i64::MAX` (and the
            // `< i64::MIN` mirror) matches nothing; an empty IN set
            // represents that exactly.
            let lo = match lo {
                None => i64::MIN,
                Some(d) => {
                    let v = int_const(d)?;
                    if *lo_inclusive {
                        v
                    } else {
                        match v.checked_add(1) {
                            Some(x) => x,
                            None => return Some(IntTest::In(Vec::new())),
                        }
                    }
                }
            };
            let hi = match hi {
                None => i64::MAX,
                Some(d) => {
                    let v = int_const(d)?;
                    if *hi_inclusive {
                        v
                    } else {
                        match v.checked_sub(1) {
                            Some(x) => x,
                            None => return Some(IntTest::In(Vec::new())),
                        }
                    }
                }
            };
            IntTest::Range { lo, hi }
        }
        PredKind::In(vals) => {
            let mut set: Vec<i64> = vals.iter().filter_map(int_const).collect();
            set.sort_unstable();
            set.dedup();
            IntTest::In(set)
        }
        // `LIKE` on an integer column errors in the residual (`as_str` on
        // an i64 column); stay on the fallback so the error surfaces.
        PredKind::Like(_) | PredKind::NotLike(_) => return None,
    })
}

pub(crate) fn compile_str(kind: &PredKind) -> Option<StrTest> {
    let str_const = |d: &Datum| match d {
        Datum::Str(s) => Some(s.clone()),
        _ => None, // non-string constant vs string column errors in the residual
    };
    Some(match kind {
        PredKind::Eq(d) => StrTest::Eq(str_const(d)?),
        PredKind::Ne(d) => StrTest::Ne(str_const(d)?),
        PredKind::Range { lo, lo_inclusive, hi, hi_inclusive } => {
            let lo = match lo {
                None => None,
                Some(d) => Some((str_const(d)?, *lo_inclusive)),
            };
            let hi = match hi {
                None => None,
                Some(d) => Some((str_const(d)?, *hi_inclusive)),
            };
            StrTest::Range { lo, hi }
        }
        PredKind::In(vals) => {
            let mut set: Vec<String> =
                vals.iter().filter_map(|d| d.as_str().map(str::to_string)).collect();
            set.sort_unstable();
            set.dedup();
            StrTest::In(set)
        }
        PredKind::Like(p) => StrTest::Like(p.clone()),
        PredKind::NotLike(p) => StrTest::NotLike(p.clone()),
    })
}

/// What the block's MinMax stats alone decide about a test.
enum StatVerdict {
    AllTrue,
    AllFalse,
    Unknown,
}

fn stats_verdict(test: &PredTest, stats: &BlockStats) -> StatVerdict {
    match test {
        PredTest::Int(t) => {
            let (Some(min), Some(max)) = (stats.min.as_int(), stats.max.as_int()) else {
                return StatVerdict::Unknown;
            };
            if min == max {
                // Constant block: one evaluation decides every row.
                return if int_test(t, min) { StatVerdict::AllTrue } else { StatVerdict::AllFalse };
            }
            match t {
                IntTest::Range { lo, hi } if *lo <= min && max <= *hi => StatVerdict::AllTrue,
                IntTest::Ne(c) if *c < min || *c > max => StatVerdict::AllTrue,
                _ => StatVerdict::Unknown,
            }
        }
        PredTest::Str(t) => {
            let (Datum::Str(min), Datum::Str(max)) = (&stats.min, &stats.max) else {
                return StatVerdict::Unknown;
            };
            if min == max {
                return if str_test(t, min) { StatVerdict::AllTrue } else { StatVerdict::AllFalse };
            }
            match t {
                StrTest::Range { lo, hi } => {
                    let lo_ok = match lo {
                        None => true,
                        Some((b, true)) => min.as_str() >= b.as_str(),
                        Some((b, false)) => min.as_str() > b.as_str(),
                    };
                    let hi_ok = match hi {
                        None => true,
                        Some((b, true)) => max.as_str() <= b.as_str(),
                        Some((b, false)) => max.as_str() < b.as_str(),
                    };
                    if lo_ok && hi_ok {
                        StatVerdict::AllTrue
                    } else {
                        StatVerdict::Unknown
                    }
                }
                StrTest::Ne(c) if c.as_str() < min.as_str() || c.as_str() > max.as_str() => {
                    StatVerdict::AllTrue
                }
                _ => StatVerdict::Unknown,
            }
        }
    }
}

impl ScanKernel {
    /// Compile the scan's predicates, or `None` when the scan must stay on
    /// the raw slice-then-residual path (no encodings, no predicates, or
    /// any predicate outside the supported matrix — see module docs).
    pub fn try_new(table: &StoredTable, preds: &[(usize, ColPredicate)]) -> Option<ScanKernel> {
        if preds.is_empty() || !table.has_encodings() {
            return None;
        }
        let mut compiled = Vec::with_capacity(preds.len());
        for (col, p) in preds {
            let test = match table.schema().columns[*col].data_type {
                DataType::Int | DataType::Date => PredTest::Int(compile_int(&p.kind)?),
                DataType::Str => PredTest::Str(compile_str(&p.kind)?),
                DataType::Float => return None,
            };
            compiled.push((*col, test));
        }
        Some(ScanKernel { preds: compiled })
    }

    /// Evaluate all predicates over rows `[lo, hi)` of `block` (whose first
    /// row is `block_start`). `pred_stats` holds each predicate column's
    /// MinMax stats, parallel to the predicate list.
    ///
    /// The returned verdict selects exactly the rows the residual
    /// expression would keep.
    pub fn eval_block(
        &self,
        table: &StoredTable,
        block: usize,
        block_start: usize,
        lo: usize,
        hi: usize,
        pred_stats: &[&ColumnBlockStats],
    ) -> Result<BlockVerdict> {
        debug_assert!(lo < hi && lo >= block_start);
        let n = hi - lo;
        // `None` = every row still passing (no mask allocated yet).
        let mut mask: Option<Vec<bool>> = None;
        for (i, (col, test)) in self.preds.iter().enumerate() {
            match stats_verdict(test, &pred_stats[i].blocks[block]) {
                StatVerdict::AllTrue => continue,
                StatVerdict::AllFalse => return Ok(BlockVerdict::SkipNoRows),
                StatVerdict::Unknown => {}
            }
            let encoding = table.encoding(*col).map(|e| e.block(block));
            match (test, encoding) {
                (PredTest::Str(t), Some(BlockEncoding::DictStr { dict, codes })) => {
                    // Evaluate once per distinct value, then compare codes.
                    let dmatch: Vec<bool> = dict.iter().map(|s| str_test(t, s)).collect();
                    let hits = dmatch.iter().filter(|&&m| m).count();
                    if hits == 0 {
                        return Ok(BlockVerdict::SkipNoRows); // dict miss
                    }
                    if hits == dict.len() {
                        continue;
                    }
                    let m = mask.get_or_insert_with(|| vec![true; n]);
                    for (j, mv) in m.iter_mut().enumerate() {
                        if *mv {
                            *mv = dmatch[codes.get(lo - block_start + j) as usize];
                        }
                    }
                }
                (PredTest::Int(t), Some(BlockEncoding::ForI64 { min, packed })) => {
                    let m = mask.get_or_insert_with(|| vec![true; n]);
                    for (j, mv) in m.iter_mut().enumerate() {
                        if *mv {
                            let v = min.wrapping_add(packed.get(lo - block_start + j) as i64);
                            *mv = int_test(t, v);
                        }
                    }
                }
                (PredTest::Int(t), Some(BlockEncoding::RleI64 { values, ends })) => {
                    // One evaluation per run, painted over the overlap with
                    // the requested range (offsets are block-local).
                    let (rlo, rhi) = (lo - block_start, hi - block_start);
                    let mut run_start = 0usize;
                    for (v, &end) in values.iter().zip(ends) {
                        let run_end = end as usize;
                        if run_end > rlo && run_start < rhi && !int_test(t, *v) {
                            let m = mask.get_or_insert_with(|| vec![true; n]);
                            for mv in &mut m[run_start.max(rlo) - rlo..run_end.min(rhi) - rlo] {
                                *mv = false;
                            }
                        }
                        run_start = run_end;
                        if run_start >= rhi {
                            break;
                        }
                    }
                }
                // Raw blocks (and the impossible codec/type pairings the
                // compiler can't see are unreachable): direct typed loops
                // with the residual's exact comparison semantics.
                (PredTest::Int(t), _) => {
                    let values = table.column(*col)?.as_i64()?;
                    let m = mask.get_or_insert_with(|| vec![true; n]);
                    for (j, mv) in m.iter_mut().enumerate() {
                        if *mv {
                            *mv = int_test(t, values[lo + j]);
                        }
                    }
                }
                (PredTest::Str(t), _) => {
                    let values = table.column(*col)?.as_str()?;
                    let m = mask.get_or_insert_with(|| vec![true; n]);
                    for (j, mv) in m.iter_mut().enumerate() {
                        if *mv {
                            *mv = str_test(t, &values[lo + j]);
                        }
                    }
                }
            }
            if let Some(m) = &mask {
                if !m.iter().any(|&k| k) {
                    return Ok(BlockVerdict::Skip);
                }
            }
        }
        Ok(match mask {
            None => BlockVerdict::All,
            Some(m) => {
                let rows: Vec<usize> =
                    m.iter().enumerate().filter(|&(_, &k)| k).map(|(j, _)| lo + j).collect();
                if rows.len() == n {
                    BlockVerdict::All
                } else {
                    BlockVerdict::Rows(rows)
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdcc_storage::{set_encode_enabled, Column, StoredTable};
    use std::sync::Arc;

    fn encoded_table() -> Arc<StoredTable> {
        set_encode_enabled(Some(true));
        let modes = ["AIR", "RAIL", "TRUCK", "SHIP"];
        let t = StoredTable::from_columns_with_block_rows(
            "t",
            vec![
                (
                    "mode".into(),
                    Column::from_strings((0..16).map(|i| modes[i % 4].into()).collect()),
                ),
                ("k".into(), Column::from_i64((100..116).collect())),
            ],
            8,
        )
        .unwrap();
        set_encode_enabled(None);
        Arc::new(t)
    }

    fn preds_of(table: &StoredTable, preds: Vec<ColPredicate>) -> Vec<(usize, ColPredicate)> {
        preds.into_iter().map(|p| (table.column_index(&p.column).unwrap(), p.clone())).collect()
    }

    #[test]
    fn dict_miss_skips_without_rows() {
        let t = encoded_table();
        // "FOB" is lexicographically inside [AIR, TRUCK] so MinMax cannot
        // prune it, but it is absent from the dict.
        let preds = preds_of(&t, vec![ColPredicate::eq("mode", Datum::Str("FOB".into()))]);
        let kernel = ScanKernel::try_new(&t, &preds).expect("supported");
        let stats = [t.block_stats(0).unwrap()];
        let v = kernel.eval_block(&t, 0, 0, 0, 8, &stats).unwrap();
        assert_eq!(v, BlockVerdict::SkipNoRows);
    }

    #[test]
    fn dict_eq_selects_exact_rows() {
        let t = encoded_table();
        let preds = preds_of(&t, vec![ColPredicate::eq("mode", Datum::Str("RAIL".into()))]);
        let kernel = ScanKernel::try_new(&t, &preds).expect("supported");
        let stats = [t.block_stats(0).unwrap()];
        let v = kernel.eval_block(&t, 0, 0, 0, 8, &stats).unwrap();
        assert_eq!(v, BlockVerdict::Rows(vec![1, 5]));
        // Sub-range of the block (scatter-scan shape).
        let v = kernel.eval_block(&t, 0, 0, 4, 8, &stats).unwrap();
        assert_eq!(v, BlockVerdict::Rows(vec![5]));
    }

    #[test]
    fn for_range_all_true_shortcut() {
        let t = encoded_table();
        let preds = preds_of(&t, vec![ColPredicate::between("k", 0i64, 1000i64)]);
        let kernel = ScanKernel::try_new(&t, &preds).expect("supported");
        let stats = [t.block_stats(1).unwrap()];
        let v = kernel.eval_block(&t, 0, 0, 0, 8, &stats).unwrap();
        assert_eq!(v, BlockVerdict::All);
    }

    #[test]
    fn for_values_unpack_on_partial_overlap() {
        let t = encoded_table();
        let preds = preds_of(&t, vec![ColPredicate::ge("k", 106i64)]);
        let kernel = ScanKernel::try_new(&t, &preds).expect("supported");
        let stats = [t.block_stats(1).unwrap()];
        // Block 0 holds k = 100..108; only rows 6, 7 survive.
        let v = kernel.eval_block(&t, 0, 0, 0, 8, &stats).unwrap();
        assert_eq!(v, BlockVerdict::Rows(vec![6, 7]));
    }

    #[test]
    fn unsupported_predicates_fall_back() {
        let t = encoded_table();
        // Float constant against an int column → residual semantics differ.
        let preds = preds_of(&t, vec![ColPredicate::eq("k", 105.0f64)]);
        assert!(ScanKernel::try_new(&t, &preds).is_none());
        // LIKE on an int column errors in the residual.
        let preds = preds_of(&t, vec![ColPredicate::like("k", LikePattern::Contains("x".into()))]);
        assert!(ScanKernel::try_new(&t, &preds).is_none());
        // No predicates → nothing to accelerate.
        assert!(ScanKernel::try_new(&t, &[]).is_none());
    }

    #[test]
    fn unencoded_tables_fall_back() {
        set_encode_enabled(Some(false));
        let t = StoredTable::from_columns_with_block_rows(
            "t",
            vec![("k".into(), Column::from_i64((0..16).collect()))],
            8,
        )
        .unwrap();
        set_encode_enabled(None);
        let preds = preds_of(&t, vec![ColPredicate::eq("k", 3i64)]);
        assert!(ScanKernel::try_new(&t, &preds).is_none());
    }

    #[test]
    fn rle_runs_evaluate_once_per_run() {
        set_encode_enabled(Some(true));
        let mut values = vec![3i64; 1000];
        values.extend(vec![900_000i64; 1000]);
        values.extend(vec![5i64; 48]);
        let t = StoredTable::from_columns_with_block_rows(
            "t",
            vec![("k".into(), Column::from_i64(values))],
            4096,
        )
        .unwrap();
        set_encode_enabled(None);
        assert!(matches!(
            t.encoding(0).unwrap().block(0),
            bdcc_storage::BlockEncoding::RleI64 { .. }
        ));
        let preds =
            preds_of(&t, vec![ColPredicate::in_list("k", vec![Datum::Int(5), Datum::Int(3)])]);
        let kernel = ScanKernel::try_new(&t, &preds).expect("supported");
        let stats = [t.block_stats(0).unwrap()];
        match kernel.eval_block(&t, 0, 0, 0, 2048, &stats).unwrap() {
            BlockVerdict::Rows(rows) => {
                assert_eq!(rows.len(), 1048);
                assert_eq!(rows[0], 0);
                assert_eq!(rows[1000], 2000);
            }
            other => panic!("expected rows, got {other:?}"),
        }
    }

    #[test]
    fn exclusive_int_bounds_normalize() {
        let t = IntTest::Range { lo: 5, hi: 9 };
        assert!(!int_test(&t, 4));
        assert!(int_test(&t, 5));
        assert!(int_test(&t, 9));
        assert!(!int_test(&t, 10));
        // col > i64::MAX is impossible.
        let k = compile_int(&PredKind::Range {
            lo: Some(Datum::Int(i64::MAX)),
            lo_inclusive: false,
            hi: None,
            hi_inclusive: true,
        })
        .unwrap();
        assert!(!int_test(&k, i64::MAX));
        assert!(!int_test(&k, 0));
    }
}
