//! Query-memory accounting.
//!
//! Figure 3 of the paper compares *memory usage* per query across the
//! Plain/PK/BDCC schemes: the dominant consumers are hash-join build tables
//! and aggregation hash tables. Operators register their materializations
//! with a shared [`MemoryTracker`]; the tracker keeps the running total and
//! the peak, which is what the figure reports.
//!
//! The tracker is thread-shared (atomics behind an `Arc`): streaming
//! parallel operators register from *worker* threads and release from the
//! *consumer* — a [`ParallelScan`](crate::parallel::ParallelScan) worker
//! registers each morsel's batches as it publishes them into the reorder
//! buffer and hands the [`MemoryGuard`] across the channel, so the guard
//! drops (and the bytes release) only once the consumer moves past the
//! morsel. With the scan's bounded in-flight cap, tracked peak for a scan
//! is O(threads × morsel) rather than O(table), which is exactly what
//! `tests/parallel_equivalence.rs` asserts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared memory accounting for one query execution.
///
/// Trackers form an optional tree: profiling gives every plan operator a
/// [`child_of`](Self::child_of) tracker whose grow/shrink forwards to the
/// query-level parent, so the query total is unchanged while each
/// operator also sees its own current/peak. Per-operator peak ≤ query
/// peak holds structurally: every child byte is a parent byte.
#[derive(Debug, Default)]
pub struct MemoryTracker {
    current: AtomicU64,
    peak: AtomicU64,
    parent: Option<Arc<MemoryTracker>>,
}

impl MemoryTracker {
    /// A fresh tracker.
    pub fn new() -> Arc<MemoryTracker> {
        Arc::new(MemoryTracker::default())
    }

    /// A tracker that also forwards every grow/shrink to `parent`
    /// (recursively, if `parent` itself has a parent).
    pub fn child_of(parent: &Arc<MemoryTracker>) -> Arc<MemoryTracker> {
        Arc::new(MemoryTracker {
            current: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            parent: Some(Arc::clone(parent)),
        })
    }

    /// Register `bytes` of newly materialized state; returns a guard that
    /// releases them when dropped.
    pub fn register(self: &Arc<Self>, bytes: u64) -> MemoryGuard {
        self.grow(bytes);
        MemoryGuard { tracker: Arc::clone(self), bytes }
    }

    /// Grow the current usage (use [`register`](Self::register) when the
    /// lifetime maps to a scope).
    pub fn grow(&self, bytes: u64) {
        let now = self.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
        if let Some(parent) = &self.parent {
            parent.grow(bytes);
        }
    }

    /// Shrink the current usage. Saturates at zero rather than wrapping:
    /// a release larger than the current total would otherwise poison
    /// every later reading with a number near `u64::MAX`. The
    /// `debug_assert` makes the double-release loud in debug builds.
    pub fn shrink(&self, bytes: u64) {
        let prev = self
            .current
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| Some(c.saturating_sub(bytes)))
            .unwrap_or(0);
        debug_assert!(
            prev >= bytes,
            "MemoryTracker::shrink({bytes}) exceeds current {prev} — double release?"
        );
        if let Some(parent) = &self.parent {
            parent.shrink(bytes);
        }
    }

    /// Current bytes registered.
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// Peak bytes since creation (or the last [`reset`](Self::reset)).
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Reset both counters (between queries).
    pub fn reset(&self) {
        self.current.store(0, Ordering::Relaxed);
        self.peak.store(0, Ordering::Relaxed);
    }
}

/// RAII guard for a tracked allocation. Its `bytes` can be grown while the
/// owning state grows (e.g. a hash table being built).
#[derive(Debug)]
pub struct MemoryGuard {
    tracker: Arc<MemoryTracker>,
    bytes: u64,
}

impl MemoryGuard {
    /// Grow this allocation by `more` bytes.
    pub fn grow(&mut self, more: u64) {
        self.bytes += more;
        self.tracker.grow(more);
    }

    /// Replace the tracked size (e.g. when rebuilding per group).
    pub fn resize(&mut self, bytes: u64) {
        if bytes > self.bytes {
            self.tracker.grow(bytes - self.bytes);
        } else {
            self.tracker.shrink(self.bytes - bytes);
        }
        self.bytes = bytes;
    }

    /// Currently tracked bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for MemoryGuard {
    fn drop(&mut self) {
        self.tracker.shrink(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_maximum() {
        let t = MemoryTracker::new();
        {
            let _a = t.register(100);
            {
                let _b = t.register(50);
                assert_eq!(t.current(), 150);
            }
            assert_eq!(t.current(), 100);
        }
        assert_eq!(t.current(), 0);
        assert_eq!(t.peak(), 150);
    }

    #[test]
    fn guard_grow_and_resize() {
        let t = MemoryTracker::new();
        let mut g = t.register(10);
        g.grow(30);
        assert_eq!(t.current(), 40);
        g.resize(5);
        assert_eq!(t.current(), 5);
        assert_eq!(t.peak(), 40);
        drop(g);
        assert_eq!(t.current(), 0);
    }

    #[test]
    fn child_forwards_to_parent() {
        let query = MemoryTracker::new();
        let op_a = MemoryTracker::child_of(&query);
        let op_b = MemoryTracker::child_of(&query);
        let ga = op_a.register(100);
        {
            let _gb = op_b.register(60);
            assert_eq!(query.current(), 160);
        }
        drop(ga);
        assert_eq!(query.current(), 0);
        assert_eq!(query.peak(), 160);
        // Each operator sees only its own allocations…
        assert_eq!(op_a.peak(), 100);
        assert_eq!(op_b.peak(), 60);
        // …and can never exceed the query peak.
        assert!(op_a.peak() <= query.peak() && op_b.peak() <= query.peak());
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn shrink_saturates_instead_of_wrapping() {
        let t = MemoryTracker::new();
        t.grow(10);
        t.shrink(25);
        assert_eq!(t.current(), 0, "over-release must saturate, not wrap");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double release")]
    fn shrink_underflow_is_loud_in_debug() {
        let t = MemoryTracker::new();
        t.grow(10);
        t.shrink(25);
    }

    #[test]
    fn reset_clears_counters() {
        let t = MemoryTracker::new();
        t.grow(42);
        t.reset();
        assert_eq!(t.current(), 0);
        assert_eq!(t.peak(), 0);
    }
}
