//! The per-scheme physical planner.
//!
//! One logical plan, three physical strategies:
//!
//! * **Plain** — plain scans (MinMax pruning), hash joins, hash
//!   aggregation.
//! * **PK** — plain scans over PK-sorted tables; merge joins when both
//!   inputs arrive ordered on the join key (LINEITEM–ORDERS,
//!   PARTSUPP–PART); streaming aggregation when the input order covers the
//!   group-by keys.
//! * **BDCC** — scatter scans over the selected count-table groups
//!   (selection pushdown + propagation computed by [`crate::restrict`]),
//!   **sandwich joins** for foreign-key joins whose sides share a
//!   dimension instance (`P(U_left) = FK · P(U_right)`), and **sandwich
//!   aggregation** when the group-by keys functionally determine a
//!   dimension use of the input.
//!
//! Sandwich planning works by *instance negotiation*: bottom-up, each
//! subtree advertises the dimension instances it could stream grouped-by
//! ([`avail`]); top-down, parents request a grouping order; scatter scans
//! satisfy any requested order (that is what makes them scatter scans).

use std::sync::Arc;
use std::time::{Duration, Instant};

use bdcc_catalog::{ForeignKey, TableId};
use bdcc_core::BdccTable;
use bdcc_pool::{CancelToken, FaultInjector};
use bdcc_storage::IoTracker;

use crate::broker::{MemoryBroker, SpillMode};
use crate::error::{ExecError, Result};
use crate::expr::Expr;
use crate::govern::{GovernedOp, Governor};
use crate::memory::MemoryTracker;
use crate::ops::agg::{HashAggregate, SandwichAggregate, StreamingAggregate};
use crate::ops::bdcc_scan::GroupSpec;
use crate::ops::join::{HashJoin, JoinType};
use crate::ops::merge_join::MergeJoin;
use crate::ops::sandwich_join::SandwichHashJoin;
use crate::ops::sort::{Limit, Sort};
use crate::ops::transform::{Filter, Project};
use crate::ops::BoxedOp;
use crate::parallel::{
    FragmentBlueprint, FragmentStep, ParallelAggregate, ParallelConfig, ParallelScan, ParallelSort,
    ScanBlueprint, ScanKind,
};
use crate::plan::{alias_column, FkSide, Node};
use crate::profile::{wrap_edge, OpProf, Profiler};
use crate::restrict::{compute_restrictions, Restrictions};
use crate::scheme::{Scheme, SchemeDb};
use bdcc_obs::OpMetrics;

/// Everything a query execution needs.
#[derive(Clone)]
pub struct QueryContext {
    pub sdb: Arc<SchemeDb>,
    pub tracker: Arc<MemoryTracker>,
    pub io: IoTracker,
    /// When set (and `threads > 1`), the planner swaps eligible leaf scans
    /// for morsel-parallel scans and eligible aggregations for partial
    /// aggregation with ordered merge. `None` plans exactly as before.
    pub parallel: Option<ParallelConfig>,
    /// When set, the planner mirrors the operator tree with per-operator
    /// metric blocks, child memory/I/O trackers and edge wrappers (see
    /// [`crate::profile`]); results stay byte-identical. `None` (the
    /// default without `BDCC_PROFILE=1`) allocates and wraps nothing.
    pub profiler: Option<Profiler>,
    /// Per-query limits (cancellation, deadline, memory budget, fault
    /// injection) checked at every morsel-grained checkpoint; inert by
    /// default (see [`crate::govern`]). Installed by the
    /// `with_cancel`/`with_deadline`/`with_memory_budget`/
    /// `with_fault_injector` builder methods — the serving layer's hook
    /// into execution.
    pub governor: Governor,
    /// Pressure oracle for spill-capable operators (hash-join build,
    /// radix aggregation): active once a memory budget is set (mode
    /// `auto`) or under `BDCC_SPILL=force`; inert otherwise, leaving
    /// operators on their pure in-memory paths (see [`crate::broker`]).
    pub broker: MemoryBroker,
    /// Compile predicates into selection-vector kernel programs (see
    /// [`crate::kernel`]); defaults to the `BDCC_KERNEL` gate. `false`
    /// keeps every filter on the seed interpreter, the
    /// differential-testing oracle.
    pub kernel: bool,
}

impl QueryContext {
    pub fn new(sdb: Arc<SchemeDb>) -> QueryContext {
        let tracker = MemoryTracker::new();
        QueryContext {
            sdb,
            broker: MemoryBroker::from_env(&tracker, None),
            tracker,
            io: IoTracker::new(),
            parallel: None,
            profiler: Profiler::from_env(),
            governor: Governor::none(),
            kernel: crate::kernel::kernel_enabled(),
        }
    }

    /// A context that executes with morsel-driven parallelism. Warms the
    /// process-wide persistent [`WorkerPool`](crate::parallel::pool::WorkerPool)
    /// to the configured width up front, so no fan-out of this (or any
    /// later) query ever creates an OS thread — every parallel operator
    /// the planner installs runs on the same parked worker set.
    pub fn with_parallel(sdb: Arc<SchemeDb>, parallel: ParallelConfig) -> QueryContext {
        // threads == 1 plans serially and every fan-out inlines — don't
        // park a worker thread nothing will ever use.
        if parallel.threads > 1 {
            crate::parallel::pool::WorkerPool::shared().ensure_workers(parallel.threads);
        }
        let tracker = MemoryTracker::new();
        QueryContext {
            sdb,
            broker: MemoryBroker::from_env(&tracker, None),
            tracker,
            io: IoTracker::new(),
            parallel: Some(parallel),
            profiler: Profiler::from_env(),
            governor: Governor::none(),
            kernel: crate::kernel::kernel_enabled(),
        }
    }

    /// Pin this query's selection-vector kernel toggle explicitly,
    /// overriding the `BDCC_KERNEL` gate.
    pub fn with_kernel(mut self, kernel: bool) -> QueryContext {
        self.kernel = kernel;
        self
    }

    /// Enable per-operator profiling on this context (what
    /// [`explain_analyze`](crate::run::explain_analyze) uses). The next
    /// `plan_query` builds the profile tree alongside the plan.
    pub fn with_profiling(mut self) -> QueryContext {
        self.profiler = Some(Profiler::new());
        self
    }

    /// Thread an externally held [`CancelToken`] through execution:
    /// every morsel loop, probe round and streaming-scan producer checks
    /// it, so `cancel()` unwinds the query mid-fan-out within one morsel
    /// (typed as [`ExecError::Cancelled`]) and RAII guards release every
    /// tracked byte.
    pub fn with_cancel(mut self, token: CancelToken) -> QueryContext {
        let tracker = Arc::clone(&self.tracker);
        self.governor.set_cancel(token, &tracker);
        self
    }

    /// Fail the query with [`ExecError::DeadlineExceeded`] once
    /// execution runs past `timeout` from now.
    pub fn with_deadline(self, timeout: Duration) -> QueryContext {
        self.with_deadline_at(Instant::now() + timeout)
    }

    /// Deadline as an absolute instant (lets a server charge queue wait
    /// time against the deadline, not just execution time).
    pub fn with_deadline_at(mut self, at: Instant) -> QueryContext {
        let tracker = Arc::clone(&self.tracker);
        self.governor.set_deadline(at, &tracker);
        self
    }

    /// Fail the query with [`ExecError::BudgetExceeded`] when its
    /// tracked memory (this context's `tracker`) exceeds `bytes` —
    /// graceful per-query degradation instead of process death.
    pub fn with_memory_budget(mut self, bytes: u64) -> QueryContext {
        let tracker = Arc::clone(&self.tracker);
        self.governor.set_budget(bytes, &tracker);
        // A budget activates the broker (unless BDCC_SPILL=off): join
        // builds and radix aggregations now spill under pressure and
        // BudgetExceeded is reserved for queries spilling cannot save.
        self.broker = MemoryBroker::from_env(&self.tracker, Some(bytes));
        self.clamp_morsels_to_budget();
        self
    }

    /// Shrink parallel morsels so the streaming scan's fixed buffer
    /// floor (≈ `threads × stream-cap × morsel bytes`, which cannot
    /// spill) scales with the budget instead of dwarfing it. Morsel
    /// size never changes results, only granularity.
    fn clamp_morsels_to_budget(&mut self) {
        let (Some(cfg), Some(budget)) = (&mut self.parallel, self.governor.budget()) else {
            return;
        };
        if !self.broker.is_active() {
            return;
        }
        // ~64 B/row estimate, 2-deep stream buffers per thread; keep at
        // least 256-row morsels so fan-out overhead stays sane.
        let cap = (budget / (cfg.threads as u64 * 2 * 64)).max(256) as usize;
        cfg.morsel_rows = cfg.morsel_rows.min(cap);
    }

    /// Pin this query's spill mode explicitly, overriding `BDCC_SPILL`
    /// (tests; also lets a caller force out-of-core execution for a
    /// single query). Call after `with_memory_budget` — the broker's
    /// `auto` thresholds derive from the budget in force at this point.
    pub fn with_spill(mut self, mode: SpillMode) -> QueryContext {
        self.broker = MemoryBroker::with_mode(mode, &self.tracker, self.governor.budget());
        self.clamp_morsels_to_budget();
        self
    }

    /// Consult `injector` at every checkpoint (delays, simulated I/O
    /// errors typed as [`ExecError::Injected`], worker panics).
    pub fn with_fault_injector(mut self, injector: Arc<FaultInjector>) -> QueryContext {
        let tracker = Arc::clone(&self.tracker);
        self.governor.set_injector(injector, &tracker);
        self
    }
}

impl Profiler {
    /// The `BDCC_PROFILE` opt-in: `1`/`true`/`on` profile every context.
    fn from_env() -> Option<Profiler> {
        match std::env::var("BDCC_PROFILE").ok().as_deref() {
            Some("1") | Some("true") | Some("on") => Some(Profiler::new()),
            _ => None,
        }
    }
}

/// Static encoding annotations for a profiled scan (EXPLAIN ANALYZE): the
/// codec mix of every read-set column plus encoded-vs-raw byte totals. A
/// no-op for unencoded tables.
fn annotate_encodings(metrics: &OpMetrics, blueprint: &ScanBlueprint) {
    if !blueprint.table.has_encodings() {
        return;
    }
    let mut cols: Vec<&str> = blueprint.columns.iter().map(|s| s.as_str()).collect();
    for p in &blueprint.predicates {
        if !cols.contains(&p.column.as_str()) {
            cols.push(&p.column);
        }
    }
    let (mut enc_bytes, mut raw_bytes) = (0u64, 0u64);
    for name in cols {
        let Ok(idx) = blueprint.table.column_index(name) else { continue };
        if let Some(enc) = blueprint.table.encoding(idx) {
            metrics.annotate(&format!("enc.{name}"), enc.codec_summary());
            enc_bytes += enc.encoded_bytes;
            raw_bytes += enc.raw_bytes;
        }
    }
    if raw_bytes > 0 {
        metrics.annotate("enc_bytes", enc_bytes.to_string());
        metrics.annotate("raw_bytes", raw_bytes.to_string());
    }
}

/// Plan a logical tree into a physical operator under the context's scheme.
pub fn plan_query(ctx: &QueryContext, node: &Node) -> Result<BoxedOp> {
    let restrictions = if ctx.sdb.scheme == Scheme::Bdcc {
        compute_restrictions(node, &ctx.sdb)?
    } else {
        Restrictions::new()
    };
    let planner = Planner { ctx, restrictions };
    let out = planner.build(node, &[])?;
    let op = if let (Some(profiler), Some(root)) = (&ctx.profiler, &out.prof) {
        profiler.set_root(Arc::clone(root));
        // The root edge wrapper (no parent) books the query's output rows
        // and the root operator's wall time.
        wrap_edge(out.op, &out.prof, &None)
    } else {
        out.op
    };
    // Governed queries poll limits before every root batch too, so even
    // a fully serial plan observes cancellation at batch granularity.
    // Ungoverned plans are structurally unchanged.
    if ctx.governor.is_active() {
        return Ok(Box::new(GovernedOp::new(op, ctx.governor.clone(), "plan-root")));
    }
    Ok(op)
}

/// One `(scan, dimension use)` occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct InstAlias {
    scan_id: usize,
    use_idx: usize,
}

/// An equivalence class of dimension-use occurrences unified by foreign-key
/// joins, with the negotiated prefix bits.
#[derive(Debug, Clone)]
struct InstSet {
    aliases: Vec<InstAlias>,
    bits: u32,
}

impl InstSet {
    fn alias_for(&self, scan_ids: &[usize]) -> Option<InstAlias> {
        self.aliases.iter().copied().find(|a| scan_ids.contains(&a.scan_id))
    }
}

/// Physical subtree plus the positions of the requested group-key columns
/// and (under profiling) the subtree's profile node.
struct PhysOut {
    op: BoxedOp,
    gk_cols: Vec<usize>,
    prof: Option<Arc<OpProf>>,
}

struct Planner<'a> {
    ctx: &'a QueryContext,
    restrictions: Restrictions,
}

impl<'a> Planner<'a> {
    fn catalog(&self) -> &bdcc_catalog::Catalog {
        self.ctx.sdb.db.catalog()
    }

    // -----------------------------------------------------------------
    // Profile-tree construction (no-ops when the context has no profiler).
    // -----------------------------------------------------------------

    /// Profile node for the operator being built: a fresh metric block, a
    /// child tracker of the query tracker, optional I/O attribution, and
    /// the already-built children. `None` when profiling is off.
    fn prof_node(
        &self,
        label: String,
        children: Vec<Option<Arc<OpProf>>>,
        io: Option<IoTracker>,
    ) -> Option<Arc<OpProf>> {
        self.ctx.profiler.as_ref()?;
        Some(Arc::new(OpProf {
            label,
            metrics: OpMetrics::new(),
            tracker: MemoryTracker::child_of(&self.ctx.tracker),
            io,
            children: children.into_iter().flatten().collect(),
        }))
    }

    /// The tracker the operator should charge: its profile node's child
    /// tracker (forwards to the query total) or the query tracker itself.
    fn op_tracker(&self, prof: &Option<Arc<OpProf>>) -> Arc<MemoryTracker> {
        match prof {
            Some(p) => Arc::clone(&p.tracker),
            None => Arc::clone(&self.ctx.tracker),
        }
    }

    /// A child I/O tracker for a storage-reading leaf, when profiling.
    fn scan_io(&self) -> Option<IoTracker> {
        self.ctx.profiler.as_ref().map(|_| self.ctx.io.child())
    }

    fn clustered(&self, table: TableId) -> Option<&BdccTable> {
        self.ctx.sdb.bdcc.as_ref().and_then(|s| s.tables.get(&table))
    }

    fn fk_by_name(&self, name: &str) -> Option<&ForeignKey> {
        self.catalog().fks().iter().find(|f| f.name == name)
    }

    // -----------------------------------------------------------------
    // Availability analysis (bottom-up).
    // -----------------------------------------------------------------

    /// Dimension instances this subtree can stream grouped-by.
    fn avail(&self, node: &Node) -> Vec<InstSet> {
        if self.ctx.sdb.scheme != Scheme::Bdcc {
            return Vec::new();
        }
        match node {
            Node::Scan { scan_id, table, .. } => {
                let Ok(tid) = self.catalog().table_id(table) else { return Vec::new() };
                let Some(bt) = self.clustered(tid) else { return Vec::new() };
                (0..bt.uses.len())
                    .filter_map(|u| {
                        let bits = bt.use_bits_at_granularity(u);
                        (bits > 0).then(|| InstSet {
                            aliases: vec![InstAlias { scan_id: *scan_id, use_idx: u }],
                            bits,
                        })
                    })
                    .collect()
            }
            Node::Filter { input, .. } | Node::Project { input, .. } => self.avail(input),
            Node::Join { left, right, join_type, fk, .. } => {
                let la = self.avail(left);
                match join_type {
                    JoinType::Inner => {
                        let ra = self.avail(right);
                        let mut merged = Vec::new();
                        let mut used_left: Vec<usize> = Vec::new();
                        if let Some((fk_name, side)) = fk {
                            if let Some(f) = self.fk_by_name(fk_name) {
                                // Normalize: `src` side references `dst`.
                                let (src_av, dst_av, src_is_left) = match side {
                                    FkSide::Left => (&la, &ra, true),
                                    FkSide::Right => (&ra, &la, false),
                                };
                                for (si, ss) in src_av.iter().enumerate() {
                                    for ds in dst_av.iter() {
                                        if self.sets_match(ss, ds, f, node) {
                                            let mut aliases = ss.aliases.clone();
                                            aliases.extend(ds.aliases.iter().copied());
                                            merged.push(InstSet {
                                                aliases,
                                                bits: ss.bits.min(ds.bits),
                                            });
                                            if src_is_left {
                                                used_left.push(si);
                                            }
                                            break;
                                        }
                                    }
                                }
                                if !src_is_left {
                                    // Mark left sets that merged.
                                    for (li, ls) in la.iter().enumerate() {
                                        if merged.iter().any(|m| {
                                            ls.aliases.iter().any(|a| m.aliases.contains(a))
                                        }) {
                                            used_left.push(li);
                                        }
                                    }
                                }
                            }
                        }
                        // Left (probe-side) grouping survives a hash join.
                        for (li, ls) in la.into_iter().enumerate() {
                            if !used_left.contains(&li) {
                                merged.push(ls);
                            }
                        }
                        merged
                    }
                    // Semi/anti joins keep the left rows (and order).
                    JoinType::Semi | JoinType::Anti => la,
                    JoinType::LeftOuter => Vec::new(),
                }
            }
            Node::Aggregate { .. } | Node::Sort { .. } | Node::Limit { .. } => Vec::new(),
        }
    }

    /// Do two instance sets refer to the same dimension instance across
    /// foreign key `f`? True iff some alias on the referencing side has
    /// path `[f] ++ path` of some alias on the referenced side.
    fn sets_match(&self, src: &InstSet, dst: &InstSet, f: &ForeignKey, node: &Node) -> bool {
        let tables = self.scan_tables(node);
        for sa in &src.aliases {
            let Some(&st) = tables.iter().find(|(id, _)| *id == sa.scan_id).map(|(_, t)| t) else {
                continue;
            };
            if st != f.from_table {
                continue;
            }
            let Some(sbt) = self.clustered(st) else { continue };
            let su = &sbt.uses[sa.use_idx];
            if su.path.first() != Some(&f.id) {
                continue;
            }
            for da in &dst.aliases {
                let Some(&dt) = tables.iter().find(|(id, _)| *id == da.scan_id).map(|(_, t)| t)
                else {
                    continue;
                };
                if dt != f.to_table {
                    continue;
                }
                let Some(dbt) = self.clustered(dt) else { continue };
                let du = &dbt.uses[da.use_idx];
                if su.dim == du.dim && su.path[1..] == du.path[..] {
                    return true;
                }
            }
        }
        false
    }

    /// `(scan_id, table)` pairs in a subtree.
    fn scan_tables(&self, node: &Node) -> Vec<(usize, TableId)> {
        let mut out = Vec::new();
        node.visit_scans(&mut |id, table, _| {
            if let Ok(t) = self.catalog().table_id(table) {
                out.push((id, t));
            }
        });
        out
    }

    // -----------------------------------------------------------------
    // Ordering analysis (for the PK scheme).
    // -----------------------------------------------------------------

    /// Column ordering of the subtree's output (empty = unordered).
    fn col_order(&self, node: &Node) -> Vec<String> {
        match node {
            Node::Scan { table, alias, .. } => {
                if self.ctx.sdb.scheme != Scheme::Pk {
                    return Vec::new();
                }
                let Ok(tid) = self.catalog().table_id(table) else { return Vec::new() };
                let pk = &self.catalog().table(tid).primary_key;
                pk.iter()
                    .map(|c| match alias {
                        Some(a) => alias_column(a, c),
                        None => c.clone(),
                    })
                    .collect()
            }
            Node::Filter { input, .. } => self.col_order(input),
            Node::Project { input, exprs } => {
                let inner = self.col_order(input);
                // Longest prefix of the order that survives the projection
                // as plain column references.
                let mut out = Vec::new();
                for c in inner {
                    let kept = exprs.iter().find(|(e, _)| matches!(e, Expr::Col(n) if n == &c));
                    match kept {
                        Some((_, name)) => out.push(name.clone()),
                        None => break,
                    }
                }
                out
            }
            Node::Join { left, join_type, .. } => match join_type {
                JoinType::Inner | JoinType::Semi | JoinType::Anti => self.col_order(left),
                JoinType::LeftOuter => Vec::new(),
            },
            Node::Sort { keys, .. } => {
                keys.iter().take_while(|k| k.ascending).map(|k| k.column.clone()).collect()
            }
            Node::Aggregate { .. } | Node::Limit { .. } => Vec::new(),
        }
    }

    // -----------------------------------------------------------------
    // Physical build (top-down, with requested grouping).
    // -----------------------------------------------------------------

    fn build(&self, node: &Node, requested: &[InstSet]) -> Result<PhysOut> {
        match node {
            Node::Scan { scan_id, table, columns, predicates, alias } => {
                self.build_scan(*scan_id, table, columns, predicates, alias.as_deref(), requested)
            }
            Node::Filter { input, predicate } => {
                let child = self.build(input, requested)?;
                let prof = self.prof_node("Filter".into(), vec![child.prof.clone()], None);
                let cop = wrap_edge(child.op, &child.prof, &prof);
                let op = Filter::with_kernel(cop, predicate.clone(), self.ctx.kernel)?
                    .with_metrics(prof.as_ref().map(|p| Arc::clone(&p.metrics)));
                Ok(PhysOut { op: Box::new(op), gk_cols: child.gk_cols, prof })
            }
            Node::Project { input, exprs } => {
                let child = self.build(input, requested)?;
                let child_schema = child.op.schema().clone();
                let mut all: Vec<(Expr, String)> = exprs.clone();
                let base = all.len();
                let mut gk_cols = Vec::with_capacity(child.gk_cols.len());
                for (i, &gc) in child.gk_cols.iter().enumerate() {
                    let name = child_schema[gc].name.clone();
                    all.push((Expr::col(&name), name));
                    gk_cols.push(base + i);
                }
                let prof = self.prof_node("Project".into(), vec![child.prof.clone()], None);
                let cop = wrap_edge(child.op, &child.prof, &prof);
                let op = Project::new(cop, all)?;
                Ok(PhysOut { op: Box::new(op), gk_cols, prof })
            }
            Node::Join { left, right, on, join_type, fk, residual } => {
                self.build_join(node, left, right, on, *join_type, fk.as_ref(), residual, requested)
            }
            Node::Aggregate { input, group_by, aggs } => {
                debug_assert!(requested.is_empty(), "nothing groups through an aggregate");
                self.build_aggregate(input, group_by, aggs)
            }
            Node::Sort { input, keys, limit } => {
                let child = self.build(input, &[])?;
                // Workers sort per-run, then a stable k-way merge with
                // run-index tie-breaking reproduces the serial stable sort
                // byte-for-byte.
                let parallel_sort = matches!(&self.ctx.parallel, Some(cfg) if cfg.threads > 1);
                let label = if parallel_sort { "Sort(parallel)" } else { "Sort(serial)" };
                let prof = self.prof_node(label.into(), vec![child.prof.clone()], None);
                let tracker = self.op_tracker(&prof);
                let cop = wrap_edge(child.op, &child.prof, &prof);
                let op: BoxedOp = match &self.ctx.parallel {
                    Some(cfg) if cfg.threads > 1 => {
                        Box::new(ParallelSort::new(cop, keys, *limit, cfg.clone(), tracker)?)
                    }
                    _ => Box::new(Sort::new(cop, keys, *limit, tracker)?),
                };
                Ok(PhysOut { op, gk_cols: vec![], prof })
            }
            Node::Limit { input, n } => {
                let child = self.build(input, &[])?;
                let prof = self.prof_node("Limit".into(), vec![child.prof.clone()], None);
                let cop = wrap_edge(child.op, &child.prof, &prof);
                Ok(PhysOut { op: Box::new(Limit::new(cop, *n)), gk_cols: vec![], prof })
            }
        }
    }

    /// Everything needed to build (and, under parallel execution, re-build
    /// per morsel) the physical scan: the access path, the pre-selected
    /// groups for BDCC, and the requested group-key columns.
    fn scan_blueprint(
        &self,
        scan_id: usize,
        table: &str,
        columns: &[String],
        predicates: &[crate::pred::ColPredicate],
        requested: &[InstSet],
    ) -> Result<(ScanBlueprint, usize)> {
        let tid = self.catalog().table_id(table)?;
        let stored = self
            .ctx
            .sdb
            .db
            .stored(tid)
            .ok_or_else(|| ExecError::Plan(format!("no storage for {table}")))?
            .clone();
        let kind = match (self.ctx.sdb.scheme, self.clustered(tid)) {
            (Scheme::Bdcc, Some(bt)) => {
                // Group selection: every restricted use must admit the
                // group's bin prefix.
                type ActiveUse = (usize, Vec<(u64, u64)>, u32);
                let mut active: Vec<ActiveUse> = Vec::new();
                let schema = self.ctx.sdb.bdcc.as_ref().expect("bdcc scheme");
                for (use_idx, u) in bt.uses.iter().enumerate() {
                    if let Some(ranges) = self.restrictions.get(&(scan_id, use_idx)) {
                        let dim_bits = schema.dimension(u.dim).bits();
                        let avail_bits = bt.use_bits_at_granularity(use_idx);
                        let shift = dim_bits - avail_bits;
                        active.push((use_idx, ranges.clone(), shift));
                    }
                }
                let mut selected: Vec<(u64, &bdcc_core::GroupEntry)> = Vec::new();
                'groups: for g in bt.count.iter() {
                    for (use_idx, ranges, shift) in &active {
                        let prefix = bt.group_bin_prefix(*use_idx, g.key);
                        // The group's prefix covers the full-granularity
                        // bin interval [prefix<<shift, (prefix+1)<<shift).
                        let lo = prefix << shift;
                        let hi = (prefix << shift) + ((1u64 << shift) - 1);
                        let overlaps = ranges.iter().any(|&(rlo, rhi)| rlo <= hi && lo <= rhi);
                        if !overlaps {
                            continue 'groups;
                        }
                    }
                    selected.push((g.key, g));
                }
                // Requested group keys per group, in requested order.
                let mut specs: Vec<GroupSpec> = Vec::with_capacity(selected.len());
                let mut names = Vec::with_capacity(requested.len());
                let scan_ids = [scan_id];
                let mut req_uses: Vec<(usize, u32)> = Vec::with_capacity(requested.len());
                for set in requested {
                    let a = set.alias_for(&scan_ids).ok_or_else(|| {
                        ExecError::Plan(format!("requested instance not available on {table}"))
                    })?;
                    names.push(format!("__gk_{}_{}", scan_id, a.use_idx));
                    req_uses.push((a.use_idx, set.bits));
                }
                for (key, g) in &selected {
                    let gks = req_uses
                        .iter()
                        .map(|&(u, bits)| {
                            let own = bt.use_bits_at_granularity(u);
                            let full = bt.group_bin_prefix(u, *key);
                            (full >> (own - bits)) as i64
                        })
                        .collect();
                    specs.push(GroupSpec { start: g.start, count: g.count, group_keys: gks });
                }
                if !requested.is_empty() {
                    // Scatter order: requested keys major-to-minor.
                    specs.sort_by(|a, b| a.group_keys.cmp(&b.group_keys));
                }
                ScanKind::Bdcc { group_key_names: names, groups: specs }
            }
            _ => {
                if !requested.is_empty() {
                    return Err(ExecError::Plan(format!(
                        "grouping requested from unclustered table {table}"
                    )));
                }
                ScanKind::Plain
            }
        };
        Ok((
            ScanBlueprint {
                table: stored,
                columns: columns.to_vec(),
                predicates: predicates.to_vec(),
                kind,
                filter_kernel: self.ctx.kernel,
            },
            requested.len(),
        ))
    }

    /// Build the leaf scan operator — serial, or a [`ParallelScan`] when a
    /// parallel config is installed and the leaf is big enough to split.
    fn build_scan(
        &self,
        scan_id: usize,
        table: &str,
        columns: &[String],
        predicates: &[crate::pred::ColPredicate],
        alias: Option<&str>,
        requested: &[InstSet],
    ) -> Result<PhysOut> {
        let (blueprint, gk_count) =
            self.scan_blueprint(scan_id, table, columns, predicates, requested)?;
        let base = columns.len();
        let gk_cols: Vec<usize> = (0..gk_count).map(|i| base + i).collect();
        // Profiling gives the scan its own I/O attribution (a child of
        // the query tracker, so query totals and access classification
        // are unchanged) and a per-operator memory tracker.
        let io_child = self.scan_io();
        let prof = self.prof_node(format!("Scan({table})"), vec![], io_child.clone());
        let io = io_child.unwrap_or_else(|| self.ctx.io.clone());
        let tracker = self.op_tracker(&prof);
        if let Some(p) = &prof {
            annotate_encodings(&p.metrics, &blueprint);
        }
        let op: BoxedOp = match &self.ctx.parallel {
            Some(cfg) if cfg.worth_splitting(blueprint.total_rows()) => Box::new(
                ParallelScan::new(blueprint, io, cfg.clone(), tracker)?
                    .with_metrics(prof.as_ref().map(|p| Arc::clone(&p.metrics)))
                    .with_governor(self.ctx.governor.clone()),
            ),
            _ => {
                if let Some(p) = &prof {
                    p.metrics.annotate("path", "serial");
                }
                let scan = blueprint.build_with_metrics(
                    &io,
                    None,
                    prof.as_ref().map(|p| Arc::clone(&p.metrics)),
                )?;
                // Serial leaves are where an otherwise-unparallel plan
                // spends its time — poll the governor per batch there.
                if self.ctx.governor.is_active() {
                    Box::new(GovernedOp::new(scan, self.ctx.governor.clone(), "scan-batch"))
                } else {
                    scan
                }
            }
        };
        // Alias: rename base columns, keep group keys. The rename rides
        // inside the scan's profile node — it is part of the access path,
        // not a plan operator.
        match alias {
            None => Ok(PhysOut { op, gk_cols, prof }),
            Some(a) => {
                let schema = op.schema().clone();
                let exprs: Vec<(Expr, String)> = schema
                    .iter()
                    .enumerate()
                    .map(|(i, m)| {
                        let name = if gk_cols.contains(&i) {
                            m.name.clone()
                        } else {
                            alias_column(a, &m.name)
                        };
                        (Expr::ColIdx(i), name)
                    })
                    .collect();
                let p = Project::new(op, exprs)?;
                Ok(PhysOut { op: Box::new(p), gk_cols, prof })
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_join(
        &self,
        node: &Node,
        left: &Node,
        right: &Node,
        on: &[(String, String)],
        join_type: JoinType,
        fk: Option<&(String, FkSide)>,
        residual: &Option<Expr>,
        requested: &[InstSet],
    ) -> Result<PhysOut> {
        let on_refs: Vec<(&str, &str)> = on.iter().map(|(l, r)| (l.as_str(), r.as_str())).collect();
        let left_ids = left.scan_ids();
        let right_ids = right.scan_ids();

        // --- BDCC: try a sandwich join -----------------------------------
        if self.ctx.sdb.scheme == Scheme::Bdcc && join_type == JoinType::Inner {
            if let Some((fk_name, side)) = fk {
                if let Some(f) = self.fk_by_name(fk_name).cloned() {
                    let la = self.avail(left);
                    let ra = self.avail(right);
                    // Shared sets: one alias on each side, matched over f.
                    let mut shared: Vec<InstSet> = Vec::new();
                    let (src_av, dst_av) = match side {
                        FkSide::Left => (&la, &ra),
                        FkSide::Right => (&ra, &la),
                    };
                    for ss in src_av {
                        for ds in dst_av {
                            if self.sets_match(ss, ds, &f, node) {
                                let mut aliases = ss.aliases.clone();
                                aliases.extend(ds.aliases.iter().copied());
                                shared.push(InstSet { aliases, bits: ss.bits.min(ds.bits) });
                                break;
                            }
                        }
                    }
                    let two_sided = |s: &InstSet| {
                        s.alias_for(&left_ids).is_some() && s.alias_for(&right_ids).is_some()
                    };
                    let all_requested_two_sided = requested.iter().all(|r| {
                        shared.iter().any(|s| r.aliases.iter().any(|a| s.aliases.contains(a)))
                    });
                    if !shared.is_empty() && all_requested_two_sided {
                        // Sandwich keys: requested first (resolved to the
                        // merged sets), then remaining shared instances.
                        let mut keys: Vec<InstSet> = Vec::new();
                        for r in requested {
                            let m = shared
                                .iter()
                                .find(|s| r.aliases.iter().any(|a| s.aliases.contains(a)))
                                .expect("checked two-sided");
                            keys.push(InstSet {
                                aliases: m.aliases.clone(),
                                bits: r.bits.min(m.bits),
                            });
                        }
                        for s in &shared {
                            let already = keys
                                .iter()
                                .any(|k| s.aliases.iter().any(|a| k.aliases.contains(a)));
                            if !already && two_sided(s) {
                                keys.push(s.clone());
                            }
                        }
                        if keys.iter().all(two_sided) && !keys.is_empty() {
                            let lreq: Vec<InstSet> = keys.clone();
                            let rreq: Vec<InstSet> = keys.clone();
                            let lout = self.build(left, &lreq)?;
                            let rout = self.build(right, &rreq)?;
                            let prof = self.prof_node(
                                "Join(sandwich)".into(),
                                vec![lout.prof.clone(), rout.prof.clone()],
                                None,
                            );
                            let lop = wrap_edge(lout.op, &lout.prof, &prof);
                            let rop = wrap_edge(rout.op, &rout.prof, &prof);
                            // Under a parallel config, oversized groups
                            // build partitioned and probe in row-range
                            // morsels; the group merge itself stays serial
                            // (it is the partition-wise short-circuit).
                            let j = SandwichHashJoin::new(
                                lop,
                                rop,
                                &on_refs,
                                lout.gk_cols.clone(),
                                rout.gk_cols,
                                residual.clone(),
                                self.op_tracker(&prof),
                            )?
                            .with_kernel(self.ctx.kernel)
                            .with_parallel(self.ctx.parallel.clone())
                            .with_metrics(prof.as_ref().map(|p| Arc::clone(&p.metrics)))
                            .with_governor(self.ctx.governor.clone());
                            // Output keeps the left columns at unchanged
                            // positions; requested = the first
                            // `requested.len()` sandwich keys.
                            let gk_cols = lout.gk_cols[..requested.len()].to_vec();
                            return Ok(PhysOut { op: Box::new(j), gk_cols, prof });
                        }
                    }
                }
            }
        }

        // --- PK: merge join when both sides are ordered on the key -------
        if self.ctx.sdb.scheme == Scheme::Pk
            && join_type == JoinType::Inner
            && on.len() == 1
            && residual.is_none()
            && requested.is_empty()
        {
            let lord = self.col_order(left);
            let rord = self.col_order(right);
            if lord.first().map(|c| c.as_str()) == Some(on[0].0.as_str())
                && rord.first().map(|c| c.as_str()) == Some(on[0].1.as_str())
            {
                let lout = self.build(left, &[])?;
                let rout = self.build(right, &[])?;
                let prof = self.prof_node(
                    "Join(merge)".into(),
                    vec![lout.prof.clone(), rout.prof.clone()],
                    None,
                );
                let lop = wrap_edge(lout.op, &lout.prof, &prof);
                let rop = wrap_edge(rout.op, &rout.prof, &prof);
                let j = MergeJoin::new(lop, rop, (&on[0].0, &on[0].1))?;
                return Ok(PhysOut { op: Box::new(j), gk_cols: vec![], prof });
            }
        }

        // --- Fallback: hash join; left-side grouping passes through ------
        let left_req: Vec<InstSet> = requested.to_vec();
        for r in &left_req {
            if r.alias_for(&left_ids).is_none() {
                return Err(ExecError::Plan(
                    "requested grouping not available through hash join".into(),
                ));
            }
        }
        let lout = self.build(left, &left_req)?;
        let rout = self.build(right, &[])?;
        let prof =
            self.prof_node("Join(hash)".into(), vec![lout.prof.clone(), rout.prof.clone()], None);
        let lop = wrap_edge(lout.op, &lout.prof, &prof);
        let rop = wrap_edge(rout.op, &rout.prof, &prof);
        // Under a parallel config the join's build side is indexed with
        // the hash-partitioned parallel build (partitioned tables are
        // registered with the memory tracker inside the operator) and the
        // probe side fans out in row-range morsels over rounds of left
        // batches — both gated inside the operator on the config's
        // morsel budget, both byte-identical to serial execution.
        let j =
            HashJoin::new(lop, rop, &on_refs, join_type, residual.clone(), self.op_tracker(&prof))?
                .with_kernel(self.ctx.kernel)
                .with_parallel(self.ctx.parallel.clone())
                .with_metrics(prof.as_ref().map(|p| Arc::clone(&p.metrics)))
                .with_governor(self.ctx.governor.clone())
                .with_broker(self.ctx.broker.clone(), self.ctx.io.clone());
        Ok(PhysOut { op: Box::new(j), gk_cols: lout.gk_cols, prof })
    }

    fn build_aggregate(
        &self,
        input: &Node,
        group_by: &[String],
        aggs: &[crate::ops::agg::AggSpec],
    ) -> Result<PhysOut> {
        let gb_refs: Vec<&str> = group_by.iter().map(|s| s.as_str()).collect();

        // Strategy precedence: the two *memory-bounded* serial strategies —
        // sandwich (group-at-a-time, BDCC) and streaming (ordered input) —
        // win over morsel-parallel aggregation: both hold at most one
        // co-cluster's (or one run's) worth of state, which neither
        // parallel strategy can beat (partials duplicate shared groups
        // per morsel; radix materializes a partitioned copy of the
        // input). Leaf scans below sandwich/streaming still parallelize
        // via [`ParallelScan`]. Within [`ParallelAggregate`] itself the
        // strategy choice is cardinality-driven (see below).

        // BDCC: sandwich aggregation on determined instances.
        if self.ctx.sdb.scheme == Scheme::Bdcc && !group_by.is_empty() {
            let av = self.avail(input);
            let determined: Vec<InstSet> =
                av.into_iter().filter(|s| self.determined_by(s, input, group_by)).collect();
            if !determined.is_empty() {
                let child = self.build(input, &determined)?;
                let prof =
                    self.prof_node("Aggregate(sandwich)".into(), vec![child.prof.clone()], None);
                let cop = wrap_edge(child.op, &child.prof, &prof);
                let op = SandwichAggregate::new(
                    cop,
                    &gb_refs,
                    aggs.to_vec(),
                    child.gk_cols,
                    self.op_tracker(&prof),
                )?;
                return Ok(PhysOut { op: Box::new(op), gk_cols: vec![], prof });
            }
        }

        // PK (or anything ordered): streaming aggregation.
        if !group_by.is_empty() {
            let order = self.col_order(input);
            let covered = group_by.len() <= order.len()
                && order[..group_by.len()].iter().all(|c| group_by.contains(c));
            if covered {
                let child = self.build(input, &[])?;
                let prof =
                    self.prof_node("Aggregate(streaming)".into(), vec![child.prof.clone()], None);
                let cop = wrap_edge(child.op, &child.prof, &prof);
                let op = StreamingAggregate::new(cop, &gb_refs, aggs.to_vec())?;
                return Ok(PhysOut { op: Box::new(op), gk_cols: vec![], prof });
            }
        }

        // Parallel: when the input is a single-scan fragment (scan →
        // filter/project chain), aggregate it morsel-parallel — identical
        // results to the hash aggregate it replaces, and the fragment is
        // where the rows (and the time) are. The operator picks between
        // per-morsel partials (coarse group-bys, tiny tables) and
        // radix-partitioned aggregation (fine-grained group-bys: rows
        // hash-partition by group key so each group lives in exactly one
        // worker-local table) by probing two sample morsels for group
        // density and cross-morsel duplication (`choose_radix`),
        // overridable through `ParallelConfig::agg_radix`
        // (`BDCC_AGG_RADIX`).
        // Without a parallel config, an active broker still routes leaf
        // fragments here with a one-thread config: only the radix
        // aggregate can spill, and a serial HashAggregate would die with
        // BudgetExceeded where out-of-core execution could finish.
        let agg_cfg = self.ctx.parallel.clone().or_else(|| {
            self.ctx.broker.is_active().then(|| {
                let mut cfg = ParallelConfig::with_threads(1);
                if let Some(budget) = self.ctx.governor.budget() {
                    cfg.morsel_rows = cfg.morsel_rows.min((budget / (2 * 64)).max(256) as usize);
                }
                cfg
            })
        });
        if let Some(cfg) = agg_cfg {
            if let Some(fragment) = self.leaf_fragment(input)? {
                if self.ctx.parallel.is_none() || cfg.worth_splitting(fragment.scan.total_rows()) {
                    // The fragment fuses scan → filter/project into the
                    // aggregate's workers, so this node is also a leaf:
                    // it gets the scan's I/O attribution.
                    let io_child = self.scan_io();
                    let prof =
                        self.prof_node("Aggregate(parallel)".into(), vec![], io_child.clone());
                    if let Some(p) = &prof {
                        p.metrics.annotate("fragment", fragment.scan.table.name());
                    }
                    let op = ParallelAggregate::new(
                        fragment,
                        &gb_refs,
                        aggs.to_vec(),
                        io_child.unwrap_or_else(|| self.ctx.io.clone()),
                        cfg,
                        self.op_tracker(&prof),
                    )?
                    .with_metrics(prof.as_ref().map(|p| Arc::clone(&p.metrics)))
                    .with_governor(self.ctx.governor.clone())
                    .with_broker(self.ctx.broker.clone());
                    return Ok(PhysOut { op: Box::new(op), gk_cols: vec![], prof });
                }
            }
        }

        let child = self.build(input, &[])?;
        let prof = self.prof_node("Aggregate(hash)".into(), vec![child.prof.clone()], None);
        let cop = wrap_edge(child.op, &child.prof, &prof);
        let op = HashAggregate::new(cop, &gb_refs, aggs.to_vec(), self.op_tracker(&prof))?;
        Ok(PhysOut { op: Box::new(op), gk_cols: vec![], prof })
    }

    /// When `node` is a filter/project chain over a single scan, lower it
    /// into a [`FragmentBlueprint`] workers can replay per morsel (no
    /// requested instances — the parallel aggregate needs no grouping from
    /// the scan). Returns `None` for any other shape.
    fn leaf_fragment(&self, node: &Node) -> Result<Option<FragmentBlueprint>> {
        // Walk down to the scan, remembering the wrappers top-down.
        let mut wrappers: Vec<&Node> = Vec::new();
        let mut cur = node;
        let (scan_id, table, columns, predicates, alias) = loop {
            match cur {
                Node::Scan { scan_id, table, columns, predicates, alias } => {
                    break (*scan_id, table, columns, predicates, alias)
                }
                Node::Filter { input, .. } | Node::Project { input, .. } => {
                    wrappers.push(cur);
                    cur = input;
                }
                _ => return Ok(None),
            }
        };
        let (blueprint, gk_count) =
            self.scan_blueprint(scan_id, table, columns, predicates, &[])?;
        debug_assert_eq!(gk_count, 0);
        let mut steps = Vec::new();
        // The alias projection the serial path applies directly above the
        // scan.
        if let Some(a) = alias {
            let exprs: Vec<(Expr, String)> = columns
                .iter()
                .enumerate()
                .map(|(i, c)| (Expr::ColIdx(i), alias_column(a, c)))
                .collect();
            steps.push(FragmentStep::Project(exprs));
        }
        // Then the wrappers, innermost first.
        for w in wrappers.iter().rev() {
            match w {
                Node::Filter { predicate, .. } => {
                    steps.push(FragmentStep::Filter(predicate.clone()))
                }
                Node::Project { exprs, .. } => steps.push(FragmentStep::Project(exprs.clone())),
                _ => unreachable!("only filter/project wrappers collected"),
            }
        }
        Ok(Some(FragmentBlueprint { scan: blueprint, steps }))
    }

    /// Do the group-by keys functionally determine instance `set` in
    /// `input`? True when some alias `(scan S of table T, use U)` satisfies:
    /// the head of `U`'s path is a foreign key whose source columns are all
    /// in the group-by set (an FK value determines everything it
    /// references), or `U` is local and its dimension key ⊆ group-by.
    fn determined_by(&self, set: &InstSet, input: &Node, group_by: &[String]) -> bool {
        let tables = self.scan_tables(input);
        for a in &set.aliases {
            let Some(&t) = tables.iter().find(|(id, _)| *id == a.scan_id).map(|(_, t)| t) else {
                continue;
            };
            let Some(bt) = self.clustered(t) else { continue };
            let u = &bt.uses[a.use_idx];
            let determining_cols: Vec<String> = match u.path.first() {
                Some(&fk) => self.catalog().fk(fk).from_columns.clone(),
                None => {
                    let schema = self.ctx.sdb.bdcc.as_ref().expect("bdcc");
                    schema.dimension(u.dim).key.clone()
                }
            };
            if determining_cols.iter().all(|c| group_by.contains(c)) {
                return true;
            }
        }
        false
    }
}
