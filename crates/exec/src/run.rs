//! Query execution and measurement.
//!
//! Figure 2 reports cold execution time and Figure 3 peak query memory;
//! [`run_measured`] executes a plan and returns both, plus the I/O-model
//! counters (pages, seeks, estimated cold-read seconds).

use std::time::Instant;

use bdcc_obs::QueryProfile;
use bdcc_storage::{DeviceProfile, IoStats};

use crate::batch::Batch;
use crate::error::{ExecError, Result};
use crate::ops::collect;
use crate::parallel::pool::{PoolStats, WorkerPool};
use crate::plan::Node;
use crate::planner::{plan_query, QueryContext};

/// Measurements of one query execution.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Wall-clock execution time in seconds (in-memory engine).
    pub seconds: f64,
    /// Peak tracked operator memory in bytes.
    pub peak_memory: u64,
    /// I/O-model counters.
    pub io: IoStats,
    /// Estimated cold-read seconds on the paper's SSD RAID profile.
    pub est_io_seconds: f64,
    /// Result rows.
    pub rows: usize,
}

/// Execute one plan, returning the materialized result.
pub fn run_plan(ctx: &QueryContext, plan: &Node) -> Result<Batch> {
    let op = plan_query(ctx, plan)?;
    collect(op)
}

/// Execute one plan with timing, memory and I/O measurement. Counters are
/// reset first, so one `QueryContext` can be reused across queries.
pub fn run_measured(ctx: &QueryContext, plan: &Node) -> Result<(Batch, Measurement)> {
    ctx.tracker.reset();
    ctx.io.reset();
    let start = Instant::now();
    let batch = run_plan(ctx, plan)?;
    let seconds = start.elapsed().as_secs_f64();
    let io = ctx.io.stats();
    let m = Measurement {
        seconds,
        peak_memory: ctx.tracker.peak(),
        io,
        est_io_seconds: DeviceProfile::ssd_raid().estimate_seconds(&io),
        rows: batch.rows(),
    };
    Ok((batch, m))
}

/// `EXPLAIN ANALYZE` output: the query result plus the measurement and
/// the per-operator profile (render with [`QueryProfile::render`], export
/// with [`QueryProfile::to_json`]).
#[derive(Debug)]
pub struct Analyzed {
    pub batch: Batch,
    pub measurement: Measurement,
    pub profile: QueryProfile,
}

/// Execute `plan` with per-operator profiling and return the annotated
/// profile alongside the result. Profiling rides on a clone of `ctx`
/// (same database, same parallel config) with a fresh [`Profiler`]
/// (`crate::profile`); the result batch is byte-identical to an
/// unprofiled [`run_plan`] of the same plan.
pub fn explain_analyze(ctx: &QueryContext, plan: &Node) -> Result<Analyzed> {
    let ctx = ctx.clone().with_profiling();
    let pool_base = WorkerPool::shared().stats();
    let (batch, measurement) = run_measured(&ctx, plan)?;
    let pool = WorkerPool::shared().stats().since(&pool_base);
    let profiler = ctx.profiler.as_ref().ok_or_else(|| {
        ExecError::Internal("explain_analyze ran without a profiler installed".into())
    })?;
    let profile = profiler
        .finalize(
            (measurement.seconds * 1e9) as u64,
            measurement.peak_memory,
            &measurement.io,
            pool_pairs(&pool),
        )
        .ok_or_else(|| ExecError::Internal("plan_query collected no profile".into()))?;
    Ok(Analyzed { batch, measurement, profile })
}

/// Pool-counter deltas as the `(name, value)` pairs the profile renders.
fn pool_pairs(p: &PoolStats) -> Vec<(String, u64)> {
    vec![
        ("workers".into(), p.workers as u64),
        ("jobs".into(), p.jobs),
        ("steals".into(), p.steals),
        ("parks".into(), p.parks),
        ("lends".into(), p.lends),
        ("lent_jobs".into(), p.lent_jobs),
        ("queue_depth_hwm".into(), p.queue_depth_hwm),
    ]
}

/// Render result rows as strings for cross-scheme comparison: rows
/// formatted then sorted, floats rounded to 2 decimals so accumulation
/// order differences do not produce false mismatches.
pub fn canonical_rows(batch: &Batch) -> Vec<String> {
    let mut rows: Vec<String> = (0..batch.rows())
        .map(|r| {
            batch
                .row(r)
                .iter()
                .map(|d| match d {
                    bdcc_storage::Datum::Float(f) => format!("{f:.5e}"),
                    other => other.to_string(),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rows.sort();
    rows
}
