//! The memory broker: the policy layer between per-query memory budgets
//! and the spill-capable operators.
//!
//! [`Governor`](crate::govern::Governor) budget checks are a *backstop*:
//! when tracked usage exceeds the budget the query dies with
//! [`ExecError::BudgetExceeded`](crate::error::ExecError). Before this
//! module, any query whose working set exceeded its budget died. The
//! [`MemoryBroker`] turns the budget into a *soft ceiling operators can
//! duck under*: spill-capable operators (hash-join build, radix
//! aggregation) ask the broker before each state-growing step, and when
//! the broker signals pressure they **freeze** — serialize their largest
//! resident partitions to temp files via `bdcc_storage::spill` and
//! release the memory — then **restore** partitions one at a time during
//! their output phase, recursing if a single partition is still too big.
//!
//! # The pressure/freeze/restore/cleanup contract
//!
//! * **Pressure** is advisory and conservative: [`should_spill`] fires
//!   when `tracked current + pending` would cross the high-water mark
//!   (¾ of budget), leaving headroom so the governor's hard check —
//!   which fires strictly *above* budget — is never reached by an
//!   operator that heeds the broker. [`release_target`] tells a freezing
//!   operator how many bytes to shed (down to the ½-budget low-water
//!   mark) so freezes are batched, not byte-at-a-time thrash.
//! * **Freeze order is size-descending**: operators freeze their largest
//!   resident partitions first, maximizing bytes released per temp file.
//! * **Restore is budgeted too**: operators restore one frozen partition
//!   at a time and may consult [`should_spill`] again; a partition that
//!   alone exceeds the budget is *recursed* — re-partitioned on deeper
//!   hash bits — never loaded whole.
//! * **Cleanup is RAII**: spill handles unlink their temp files on drop,
//!   so governor trips (cancel/deadline/budget) that unwind the operator
//!   tree remove every temp file with no broker involvement.
//! * **Determinism**: the broker only decides *where* state lives, never
//!   what is computed. Each partition's rows are replayed in original
//!   stream order on restore, so results are byte-identical to
//!   in-memory execution (asserted by `tests/spill_equivalence.rs`).
//!
//! # Modes
//!
//! `BDCC_SPILL` selects the mode (process override via
//! [`set_spill_mode`] wins, for tests):
//!
//! * `auto` (default) — spill under pressure, only when a budget is set;
//! * `force` — every spill-capable operator spills everything (tiny
//!   working sets included), exercising the out-of-core paths;
//! * `off` / `0` / `false` — never spill; over-budget queries fail with
//!   `BudgetExceeded` exactly as before this module.
//!
//! [`should_spill`]: MemoryBroker::should_spill
//! [`release_target`]: MemoryBroker::release_target

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use crate::memory::MemoryTracker;

/// When spill-capable operators move state to temp files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillMode {
    /// Spill everything, regardless of pressure (testing / validation).
    Force,
    /// Spill when tracked usage approaches the query budget.
    Auto,
    /// Never spill; over-budget queries fail with `BudgetExceeded`.
    Off,
}

/// Process-wide override: 0 = read env, 1 = Force, 2 = Auto, 3 = Off.
static SPILL_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Override the `BDCC_SPILL` mode for this process (`None` restores the
/// environment reading). Lets tests pin a mode without the env-var races
/// `std::env::set_var` invites under a parallel test runner.
pub fn set_spill_mode(mode: Option<SpillMode>) {
    let v = match mode {
        None => 0,
        Some(SpillMode::Force) => 1,
        Some(SpillMode::Auto) => 2,
        Some(SpillMode::Off) => 3,
    };
    SPILL_OVERRIDE.store(v, Ordering::Relaxed);
}

/// The effective spill mode: the [`set_spill_mode`] override if set,
/// else `BDCC_SPILL` from the environment, else `Auto`.
pub fn spill_mode() -> SpillMode {
    match SPILL_OVERRIDE.load(Ordering::Relaxed) {
        1 => return SpillMode::Force,
        2 => return SpillMode::Auto,
        3 => return SpillMode::Off,
        _ => {}
    }
    match std::env::var("BDCC_SPILL") {
        Ok(v) => match v.to_ascii_lowercase().as_str() {
            "force" => SpillMode::Force,
            "off" | "0" | "false" => SpillMode::Off,
            _ => SpillMode::Auto,
        },
        Err(_) => SpillMode::Auto,
    }
}

/// High-water mark: pressure fires when `current + pending` would cross
/// ¾ of budget, leaving headroom below the governor's hard check.
fn high_water(budget: u64) -> u64 {
    budget - budget / 4
}

/// Low-water mark: a freeze sheds bytes until usage is at most ½ budget.
fn low_water(budget: u64) -> u64 {
    budget / 2
}

#[derive(Debug)]
struct BrokerInner {
    mode: SpillMode,
    budget: Option<u64>,
    tracker: Arc<MemoryTracker>,
}

/// Cheap cloneable pressure oracle handed to spill-capable operators;
/// inert by default (no budget, mode `Off`, or `Auto` without a
/// budget). See the [module docs](self) for the full contract.
#[derive(Debug, Clone, Default)]
pub struct MemoryBroker {
    inner: Option<Arc<BrokerInner>>,
}

impl MemoryBroker {
    /// An inert broker: [`should_spill`](Self::should_spill) is always
    /// false and operators keep their pure in-memory paths.
    pub fn none() -> MemoryBroker {
        MemoryBroker::default()
    }

    /// A broker for one query: `budget` is the query's byte budget (if
    /// any), `tracker` the query-level root its usage is read from. The
    /// mode comes from [`spill_mode`]; `Auto` without a budget — and
    /// `Off` always — yield an inert broker.
    pub fn from_env(tracker: &Arc<MemoryTracker>, budget: Option<u64>) -> MemoryBroker {
        Self::with_mode(spill_mode(), tracker, budget)
    }

    /// A broker with an explicit mode (tests; `from_env` otherwise).
    pub fn with_mode(
        mode: SpillMode,
        tracker: &Arc<MemoryTracker>,
        budget: Option<u64>,
    ) -> MemoryBroker {
        let active = match mode {
            SpillMode::Force => true,
            SpillMode::Auto => budget.is_some(),
            SpillMode::Off => false,
        };
        if !active {
            return MemoryBroker::none();
        }
        MemoryBroker {
            inner: Some(Arc::new(BrokerInner { mode, budget, tracker: Arc::clone(tracker) })),
        }
    }

    /// Whether spill paths should be wired up at all. Inactive brokers
    /// leave operators structurally identical to pre-spill code.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// This broker's mode (`Off` when inert).
    pub fn mode(&self) -> SpillMode {
        self.inner.as_ref().map(|i| i.mode).unwrap_or(SpillMode::Off)
    }

    /// Should an operator about to hold `pending` more bytes freeze
    /// state first? `Force` always says yes; `Auto` says yes when
    /// `current + pending` crosses the high-water mark.
    pub fn should_spill(&self, pending: u64) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        match inner.mode {
            SpillMode::Force => true,
            SpillMode::Off => false,
            SpillMode::Auto => match inner.budget {
                Some(budget) => {
                    inner.tracker.current().saturating_add(pending) > high_water(budget)
                }
                None => false,
            },
        }
    }

    /// How many tracked bytes a freeze should release to reach the
    /// low-water mark (0 when already under it, `u64::MAX` under
    /// `Force` — shed everything sheddable).
    pub fn release_target(&self) -> u64 {
        let Some(inner) = &self.inner else {
            return 0;
        };
        match (inner.mode, inner.budget) {
            (SpillMode::Force, _) => u64::MAX,
            (_, Some(budget)) => inner.tracker.current().saturating_sub(low_water(budget)),
            _ => 0,
        }
    }

    /// The per-partition resident ceiling for restores: a frozen
    /// partition estimated above this must be recursed (split on deeper
    /// hash bits), not loaded whole. Under `Force` with no budget the
    /// ceiling is unbounded — forced spills validate the freeze/restore
    /// round-trip, not recursion.
    pub fn restore_limit(&self) -> u64 {
        match self.inner.as_ref().and_then(|i| i.budget) {
            Some(budget) => low_water(budget).max(1),
            None => u64::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_without_budget_in_auto() {
        let t = MemoryTracker::new();
        let b = MemoryBroker::with_mode(SpillMode::Auto, &t, None);
        assert!(!b.is_active());
        assert!(!b.should_spill(u64::MAX));
        assert_eq!(b.release_target(), 0);
    }

    #[test]
    fn off_is_always_inert() {
        let t = MemoryTracker::new();
        let b = MemoryBroker::with_mode(SpillMode::Off, &t, Some(100));
        assert!(!b.is_active());
        assert!(!b.should_spill(u64::MAX));
    }

    #[test]
    fn force_spills_everything() {
        let t = MemoryTracker::new();
        let b = MemoryBroker::with_mode(SpillMode::Force, &t, None);
        assert!(b.is_active());
        assert!(b.should_spill(0));
        assert_eq!(b.release_target(), u64::MAX);
        assert_eq!(b.restore_limit(), u64::MAX);
    }

    #[test]
    fn auto_pressure_fires_at_high_water() {
        let t = MemoryTracker::new();
        let b = MemoryBroker::with_mode(SpillMode::Auto, &t, Some(1000));
        // High water = 750: 700 + 50 stays under, +51 crosses.
        t.grow(700);
        assert!(!b.should_spill(50));
        assert!(b.should_spill(51));
        // Release target drains down to low water (500).
        assert_eq!(b.release_target(), 200);
        t.shrink(300);
        assert_eq!(b.release_target(), 0, "under low water: nothing to shed");
        assert_eq!(b.restore_limit(), 500);
        t.shrink(400);
    }

    #[test]
    fn pending_overflow_is_saturating() {
        let t = MemoryTracker::new();
        let b = MemoryBroker::with_mode(SpillMode::Auto, &t, Some(1000));
        t.grow(10);
        assert!(b.should_spill(u64::MAX), "saturating add, not wrap");
        t.shrink(10);
    }

    #[test]
    fn override_beats_env() {
        set_spill_mode(Some(SpillMode::Force));
        assert_eq!(spill_mode(), SpillMode::Force);
        set_spill_mode(Some(SpillMode::Off));
        assert_eq!(spill_mode(), SpillMode::Off);
        set_spill_mode(None);
        // Back to env/default — with no BDCC_SPILL set this is Auto; any
        // value the harness sets parses to one of the three modes.
        let _ = spill_mode();
    }
}
