//! Spill-mode equivalence suite: join-heavy and fine-grained-aggregate
//! queries across schemes × thread counts × spill modes (off / auto /
//! force — the same knob `BDCC_SPILL` sets process-wide) must produce
//! **byte-identical** results, drain every spill temp file (including
//! when queries die mid-flight to deadlines, cancellation, or injected
//! faults), and keep tracked memory within the query budget when one is
//! set.

use std::sync::Arc;
use std::time::Duration;

use bdcc_catalog::{Catalog, ColumnDef, Database, TableDef};
use bdcc_core::DesignConfig;
use bdcc_exec::run::{canonical_rows, run_measured};
use bdcc_exec::{
    aggregate, bdcc_scheme, join_full, pk_scheme, plain_scheme, AggFunc, AggSpec, Expr, JoinType,
    Node, ParallelConfig, PlanBuilder, QueryContext, SchemeDb, SpillMode,
};
use bdcc_pool::{CancelToken, FaultInjector, FaultPlan};
use bdcc_storage::{live_spill_files, Column, DataType, StoredTable, TableBuilder};

const N_CUST: i64 = 512;
const N_ORDERS: i64 = 20_000;

fn build_db() -> Database {
    let mut cat = Catalog::new();
    let int = |n: &str| ColumnDef { name: n.to_string(), data_type: DataType::Int };
    cat.create_table(TableDef {
        name: "customer".into(),
        columns: vec![int("c_key"), int("c_nation"), int("c_score")],
        primary_key: vec!["c_key".into()],
    })
    .unwrap();
    cat.create_table(TableDef {
        name: "orders".into(),
        columns: vec![int("o_key"), int("o_cust"), int("o_day"), int("o_amount")],
        primary_key: vec!["o_key".into()],
    })
    .unwrap();
    cat.create_foreign_key("FK_O_C", "orders", &["o_cust"], "customer", &["c_key"]).unwrap();
    cat.create_index("c_n", "customer", &["c_nation"]).unwrap();
    cat.create_index("o_c", "orders", &["o_cust"]).unwrap();

    let mut db = Database::new(cat);
    let attach = |db: &mut Database, t: StoredTable| {
        let id = db.catalog().table_id(t.name()).unwrap();
        db.attach(id, Arc::new(t));
    };
    attach(
        &mut db,
        TableBuilder::new("customer")
            .column("c_key", Column::from_i64((0..N_CUST).collect()))
            .column("c_nation", Column::from_i64((0..N_CUST).map(|k| k % 16).collect()))
            .column("c_score", Column::from_i64((0..N_CUST).map(|k| k * 7 % 100).collect()))
            .build()
            .unwrap(),
    );
    // Fine (512-row) blocks: morsels — and with them the streaming
    // scan's unspillable buffer floor — can shrink when a budget is set.
    attach(
        &mut db,
        StoredTable::from_columns_with_block_rows(
            "orders",
            vec![
                ("o_key".into(), Column::from_i64((0..N_ORDERS).collect())),
                (
                    "o_cust".into(),
                    Column::from_i64((0..N_ORDERS).map(|k| k * 31 % N_CUST).collect()),
                ),
                ("o_day".into(), Column::from_i64((0..N_ORDERS).map(|k| k * 13 % 365).collect())),
                ("o_amount".into(), Column::from_i64((0..N_ORDERS).map(|k| k % 1000).collect())),
            ],
            512,
        )
        .unwrap(),
    );
    db
}

fn schemes() -> Vec<(&'static str, Arc<SchemeDb>)> {
    let db = build_db();
    let mut cfg = DesignConfig::default();
    cfg.selftune.ar_bytes = 256;
    vec![
        ("plain", Arc::new(plain_scheme(&db))),
        ("pk", Arc::new(pk_scheme(&db).unwrap())),
        ("bdcc", Arc::new(bdcc_scheme(&db, &cfg).unwrap())),
    ]
}

/// Join-heavy: the build side is the 20 000-row orders table (no FK
/// hint, so every scheme hash-joins) feeding a fine aggregate — under
/// pressure both the join build and the radix aggregation spill.
fn join_heavy() -> Node {
    let b = PlanBuilder::new();
    let customer = b.scan("customer", &["c_key", "c_score"], vec![]);
    let orders = b.scan("orders", &["o_cust", "o_amount", "o_day"], vec![]);
    let j = join_full(
        customer,
        orders,
        &[("c_key", "o_cust")],
        JoinType::Inner,
        None,
        Some(Expr::col("o_amount").ge(Expr::col("o_day").sub(Expr::lit(300)))),
    );
    aggregate(
        j,
        &["c_key"],
        vec![
            AggSpec::new(AggFunc::Sum, Expr::col("o_amount"), "amt"),
            AggSpec::new(AggFunc::Count, Expr::lit(1), "n"),
        ],
    )
}

/// Fine-grained aggregation: one group per order row — the radix
/// aggregate's sweet spot, and all 20 000 groups must survive spilling.
fn fine_agg() -> Node {
    let b = PlanBuilder::new();
    let orders = b.scan("orders", &["o_key", "o_amount", "o_day"], vec![]);
    aggregate(
        orders,
        &["o_key"],
        vec![
            AggSpec::new(AggFunc::Sum, Expr::col("o_amount"), "s"),
            AggSpec::new(AggFunc::Avg, Expr::col("o_day"), "a"),
            AggSpec::new(AggFunc::Count, Expr::lit(1), "n"),
        ],
    )
}

fn ctx(sdb: &Arc<SchemeDb>, threads: usize) -> QueryContext {
    if threads > 1 {
        QueryContext::with_parallel(Arc::clone(sdb), ParallelConfig::with_threads(threads))
    } else {
        QueryContext::new(Arc::clone(sdb))
    }
}

#[test]
fn spill_modes_are_byte_identical_across_schemes_and_threads() {
    let schemes = schemes();
    let base_files = live_spill_files();
    for (query_name, query) in [("join_heavy", join_heavy()), ("fine_agg", fine_agg())] {
        let mut canonical: Option<Vec<String>> = None;
        for (scheme_name, sdb) in &schemes {
            for threads in [1, 4] {
                // Reference: spilling off.
                let (want, _) =
                    run_measured(&ctx(sdb, threads).with_spill(SpillMode::Off), &query).unwrap();
                for mode in [SpillMode::Auto, SpillMode::Force] {
                    let (got, _) = run_measured(&ctx(sdb, threads).with_spill(mode), &query)
                        .unwrap_or_else(|e| {
                            panic!("{query_name}/{scheme_name}/{threads}t/{mode:?}: {e}")
                        });
                    assert_eq!(
                        want, got,
                        "{query_name}/{scheme_name}/{threads}t/{mode:?}: must be byte-identical"
                    );
                    assert_eq!(
                        live_spill_files(),
                        base_files,
                        "{query_name}/{scheme_name}/{threads}t/{mode:?}: temp files must drain"
                    );
                }
                // Cross-scheme/thread agreement (row order is canonical).
                let rows = canonical_rows(&want);
                match &canonical {
                    None => canonical = Some(rows),
                    Some(expect) => {
                        assert_eq!(expect, &rows, "{query_name}/{scheme_name}/{threads}t")
                    }
                }
            }
        }
    }
}

#[test]
fn spilling_completes_within_half_the_unspilled_peak() {
    let schemes = schemes();
    let (_, plain) = &schemes[0];
    for (query_name, query) in [("join_heavy", join_heavy()), ("fine_agg", fine_agg())] {
        for threads in [1, 4] {
            let (want, off) =
                run_measured(&ctx(plain, threads).with_spill(SpillMode::Off), &query).unwrap();
            assert!(off.peak_memory > 0, "{query_name}: reference peak must be tracked");
            let budget = off.peak_memory / 2;
            let c = ctx(plain, threads).with_memory_budget(budget).with_spill(SpillMode::Auto);
            let io = c.io.clone();
            let (got, on) = run_measured(&c, &query).unwrap_or_else(|e| {
                panic!("{query_name}/{threads}t: must finish within budget {budget}: {e}")
            });
            assert_eq!(want, got, "{query_name}/{threads}t: spilled result differs");
            assert!(
                on.peak_memory <= budget,
                "{query_name}/{threads}t: tracked peak {} must fit budget {}",
                on.peak_memory,
                budget
            );
            assert!(
                io.stats().bytes_read > off.io.bytes_read,
                "{query_name}/{threads}t: spill traffic must be metered through the IoTracker"
            );
        }
    }
}

#[test]
fn budget_exceeded_survives_only_for_truly_oversized_queries() {
    // The aggregate above a join is not a leaf fragment, so it runs as
    // an in-memory hash aggregate whose state (512 groups) cannot spill:
    // a 1 KB budget still dies with a budget error even in auto mode —
    // BudgetExceeded remains the backstop for truly oversized queries.
    let schemes = schemes();
    let (_, plain) = &schemes[0];
    let err = run_measured(
        &ctx(plain, 1).with_memory_budget(1024).with_spill(SpillMode::Auto),
        &join_heavy(),
    )
    .unwrap_err();
    let msg = format!("{err}").to_lowercase();
    assert!(msg.contains("budget"), "expected a budget error, got: {err}");
    assert_eq!(live_spill_files(), 0, "failed queries must drain their spill files");
}

#[test]
fn deadline_and_cancel_mid_spill_drain_all_temp_files() {
    let schemes = schemes();
    let (_, plain) = &schemes[0];
    let base_files = live_spill_files();
    let reference =
        run_measured(&ctx(plain, 1).with_spill(SpillMode::Off), &join_heavy()).unwrap().0;
    // Deadline sweep: some deadlines trip mid-spill, some let the query
    // finish — in every case the temp files must be gone, and a
    // completed run must still be byte-identical.
    for micros in [0u64, 200, 1_000, 5_000, 50_000, 1_000_000] {
        let c =
            ctx(plain, 1).with_deadline(Duration::from_micros(micros)).with_spill(SpillMode::Force);
        let tracker = Arc::clone(&c.tracker);
        match run_measured(&c, &join_heavy()) {
            Ok((out, _)) => assert_eq!(reference, out, "deadline {micros}µs"),
            Err(e) => {
                let msg = format!("{e}").to_lowercase();
                assert!(
                    msg.contains("deadline") || msg.contains("cancel"),
                    "deadline {micros}µs: unexpected error {e}"
                );
            }
        }
        assert_eq!(live_spill_files(), base_files, "deadline {micros}µs: leaked spill files");
        assert_eq!(tracker.current(), 0, "deadline {micros}µs: leaked tracked bytes");
    }
    // Pre-tripped cancellation dies at the first checkpoint.
    let token = CancelToken::new();
    token.cancel();
    let c = ctx(plain, 1).with_cancel(token).with_spill(SpillMode::Force);
    assert!(run_measured(&c, &join_heavy()).is_err());
    assert_eq!(live_spill_files(), base_files, "cancelled query leaked spill files");
}

#[test]
fn injected_faults_mid_spill_drain_all_temp_files() {
    let schemes = schemes();
    let (_, plain) = &schemes[0];
    let base_files = live_spill_files();
    let reference =
        run_measured(&ctx(plain, 1).with_spill(SpillMode::Off), &join_heavy()).unwrap().0;
    let plan = FaultPlan::parse("err=0.05,seed=1723").unwrap();
    let injector = Arc::new(FaultInjector::new(plan));
    let mut failures = 0;
    for i in 0..20 {
        let c =
            ctx(plain, 1).with_fault_injector(Arc::clone(&injector)).with_spill(SpillMode::Force);
        let tracker = Arc::clone(&c.tracker);
        match run_measured(&c, &join_heavy()) {
            Ok((out, _)) => assert_eq!(reference, out, "faulted-but-completed run differs"),
            Err(_) => failures += 1,
        }
        assert_eq!(live_spill_files(), base_files, "faulted query leaked spill files");
        assert_eq!(tracker.current(), 0, "faulted run {i} leaked tracked bytes");
    }
    assert!(failures > 0, "5% error injection over 20 spilling runs should fail at least once");
}
