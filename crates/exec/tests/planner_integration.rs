//! Planner integration tests over a small hand-built star schema:
//! verifies the per-scheme plan *behaviour* (pushdown, propagation,
//! sandwiching, merge joins, streaming aggregation) through the observable
//! counters rather than by inspecting operator trees.

use std::sync::Arc;

use bdcc_catalog::{Catalog, ColumnDef, Database, TableDef};
use bdcc_core::DesignConfig;
use bdcc_exec::run::{canonical_rows, run_measured};
use bdcc_exec::{
    aggregate, bdcc_scheme, filter, join, join_full, pk_scheme, plain_scheme, sort, AggFunc,
    AggSpec, ColPredicate, Datum, Expr, FkSide, JoinType, Node, PlanBuilder, QueryContext, Scheme,
    SchemeDb, SortKey,
};
use bdcc_storage::{Column, DataType, StoredTable, TableBuilder};

/// Schema: region(4) ← nation(16) ← customer(512) ← orders(8192), with a
/// local date-ish dimension on orders.
fn build_db() -> Database {
    let mut cat = Catalog::new();
    let int = |n: &str| ColumnDef { name: n.to_string(), data_type: DataType::Int };
    cat.create_table(TableDef {
        name: "region".into(),
        columns: vec![int("r_key"), int("r_zone")],
        primary_key: vec!["r_key".into()],
    })
    .unwrap();
    cat.create_table(TableDef {
        name: "nation".into(),
        columns: vec![int("n_key"), int("n_region")],
        primary_key: vec!["n_key".into()],
    })
    .unwrap();
    cat.create_table(TableDef {
        name: "customer".into(),
        columns: vec![int("c_key"), int("c_nation"), int("c_score")],
        primary_key: vec!["c_key".into()],
    })
    .unwrap();
    cat.create_table(TableDef {
        name: "orders".into(),
        columns: vec![int("o_key"), int("o_cust"), int("o_day"), int("o_amount")],
        primary_key: vec!["o_key".into()],
    })
    .unwrap();
    cat.create_foreign_key("FK_N_R", "nation", &["n_region"], "region", &["r_key"]).unwrap();
    cat.create_foreign_key("FK_C_N", "customer", &["c_nation"], "nation", &["n_key"]).unwrap();
    cat.create_foreign_key("FK_O_C", "orders", &["o_cust"], "customer", &["c_key"]).unwrap();
    // Hints: compound nation dimension (region major), day dimension,
    // FK hints for propagation.
    cat.create_index("nation_idx", "nation", &["n_region", "n_key"]).unwrap();
    cat.create_index("day_idx", "orders", &["o_day"]).unwrap();
    cat.create_index("c_n", "customer", &["c_nation"]).unwrap();
    cat.create_index("o_c", "orders", &["o_cust"]).unwrap();

    let mut db = Database::new(cat);
    let attach = |db: &mut Database, t: StoredTable| {
        let id = db.catalog().table_id(t.name()).unwrap();
        db.attach(id, Arc::new(t));
    };
    attach(
        &mut db,
        TableBuilder::new("region")
            .column("r_key", Column::from_i64((0..4).collect()))
            .column("r_zone", Column::from_i64(vec![0, 0, 1, 1]))
            .build()
            .unwrap(),
    );
    attach(
        &mut db,
        TableBuilder::new("nation")
            .column("n_key", Column::from_i64((0..16).collect()))
            .column("n_region", Column::from_i64((0..16).map(|k| k / 4).collect()))
            .build()
            .unwrap(),
    );
    let n_cust = 512i64;
    attach(
        &mut db,
        TableBuilder::new("customer")
            .column("c_key", Column::from_i64((0..n_cust).collect()))
            .column("c_nation", Column::from_i64((0..n_cust).map(|k| k % 16).collect()))
            .column("c_score", Column::from_i64((0..n_cust).map(|k| k * 7 % 100).collect()))
            .build()
            .unwrap(),
    );
    let n_orders = 8192i64;
    attach(
        &mut db,
        TableBuilder::new("orders")
            .column("o_key", Column::from_i64((0..n_orders).collect()))
            .column("o_cust", Column::from_i64((0..n_orders).map(|k| k * 31 % n_cust).collect()))
            .column("o_day", Column::from_i64((0..n_orders).map(|k| k * 13 % 365).collect()))
            .column("o_amount", Column::from_i64((0..n_orders).map(|k| k % 1000).collect()))
            .build()
            .unwrap(),
    );
    db
}

fn schemes() -> (Arc<SchemeDb>, Arc<SchemeDb>, Arc<SchemeDb>) {
    let db = build_db();
    let mut cfg = DesignConfig::default();
    // Small tables: force fine clustering so groups exist.
    cfg.selftune.ar_bytes = 256;
    (
        Arc::new(plain_scheme(&db)),
        Arc::new(pk_scheme(&db).unwrap()),
        Arc::new(bdcc_scheme(&db, &cfg).unwrap()),
    )
}

/// A star query: orders of zone-0 customers in the first quarter.
fn star_query() -> Node {
    let b = PlanBuilder::new();
    let region = b.scan("region", &["r_key"], vec![ColPredicate::eq("r_zone", 0i64)]);
    let nation = b.scan("nation", &["n_key", "n_region"], vec![]);
    let customer = b.scan("customer", &["c_key", "c_nation"], vec![]);
    let orders =
        b.scan("orders", &["o_key", "o_cust", "o_amount"], vec![ColPredicate::lt("o_day", 90i64)]);
    let nr = join(nation, region, &[("n_region", "r_key")], Some(("FK_N_R", FkSide::Left)));
    let cn = join(customer, nr, &[("c_nation", "n_key")], Some(("FK_C_N", FkSide::Left)));
    let oc = join(orders, cn, &[("o_cust", "c_key")], Some(("FK_O_C", FkSide::Left)));
    aggregate(oc, &["n_region"], vec![AggSpec::new(AggFunc::Sum, Expr::col("o_amount"), "total")])
}

#[test]
fn star_query_agrees_and_bdcc_reads_less() {
    let (plain, pk, bdcc) = schemes();
    let mut results = Vec::new();
    let mut bytes = Vec::new();
    for sdb in [&plain, &pk, &bdcc] {
        let ctx = QueryContext::new(Arc::clone(sdb));
        let (out, m) = run_measured(&ctx, &star_query()).unwrap();
        results.push(canonical_rows(&out));
        bytes.push(m.io.bytes_read);
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0], results[2]);
    assert_eq!(results[0].len(), 2, "two zone-0 regions");
    // Zone selects 1/2 of regions, day selects ~1/4 of orders: the
    // propagated restriction must cut orders bytes well below plain.
    assert!(
        bytes[2] * 2 < bytes[0],
        "BDCC {} bytes should be well under Plain {}",
        bytes[2],
        bytes[0]
    );
}

#[test]
fn sandwich_join_bounds_memory_on_bdcc() {
    let (plain, _, bdcc) = schemes();
    let b = PlanBuilder::new();
    // Full join orders ⋈ customer with a wide aggregate: plain builds a
    // hash table of all customers; BDCC sandwiches on the shared nation
    // dimension.
    let mk = || {
        let b2 = PlanBuilder::new();
        let orders = b2.scan("orders", &["o_cust", "o_amount"], vec![]);
        let customer = b2.scan("customer", &["c_key", "c_score"], vec![]);
        let j = join(orders, customer, &[("o_cust", "c_key")], Some(("FK_O_C", FkSide::Left)));
        aggregate(j, &["c_score"], vec![AggSpec::new(AggFunc::Count, Expr::lit(1), "n")])
    };
    let _ = b;
    let pctx = QueryContext::new(Arc::clone(&plain));
    let (pout, pm) = run_measured(&pctx, &mk()).unwrap();
    let bctx = QueryContext::new(Arc::clone(&bdcc));
    let (bout, bm) = run_measured(&bctx, &mk()).unwrap();
    assert_eq!(canonical_rows(&pout), canonical_rows(&bout));
    assert!(
        bm.peak_memory * 2 < pm.peak_memory,
        "sandwich peak {} should be far below hash peak {}",
        bm.peak_memory,
        pm.peak_memory
    );
}

#[test]
fn pk_scheme_uses_merge_join_order() {
    // orders ⋈ customer on the right-side PK: under PK both inputs are
    // sorted, and the merge join needs (and registers) no build memory.
    let (_, pk, _) = schemes();
    let b = PlanBuilder::new();
    let customer = b.scan("customer", &["c_key", "c_score"], vec![]);
    let orders = b.scan("orders", &["o_key", "o_cust"], vec![]);
    // customer.c_key is the PK order of customer; orders.o_key of orders.
    let plan = join(customer, orders, &[("c_key", "o_key")], None);
    let ctx = QueryContext::new(Arc::clone(&pk));
    let (out, m) = run_measured(&ctx, &plan).unwrap();
    assert_eq!(out.rows(), 512); // keys 0..512 match
    assert_eq!(m.peak_memory, 0, "merge join must not build a hash table");
}

#[test]
fn streaming_aggregate_on_pk_order() {
    let (_, pk, _) = schemes();
    let b = PlanBuilder::new();
    let orders = b.scan("orders", &["o_key", "o_amount"], vec![]);
    let plan =
        aggregate(orders, &["o_key"], vec![AggSpec::new(AggFunc::Sum, Expr::col("o_amount"), "s")]);
    let ctx = QueryContext::new(Arc::clone(&pk));
    let (out, m) = run_measured(&ctx, &plan).unwrap();
    assert_eq!(out.rows(), 8192);
    assert_eq!(m.peak_memory, 0, "streaming aggregation needs no hash table");
}

#[test]
fn semi_and_anti_joins_agree_across_schemes() {
    let (plain, pk, bdcc) = schemes();
    let mk = |jt: JoinType| {
        let b = PlanBuilder::new();
        let customer = b.scan("customer", &["c_key"], vec![]);
        let orders = b.scan("orders", &["o_cust"], vec![ColPredicate::ge("o_amount", 990i64)]);
        let j = join_full(
            customer,
            orders,
            &[("c_key", "o_cust")],
            jt,
            Some(("FK_O_C", FkSide::Right)),
            None,
        );
        sort(
            aggregate(j, &[], vec![AggSpec::new(AggFunc::Count, Expr::lit(1), "n")]),
            vec![SortKey::asc("n")],
            None,
        )
    };
    for jt in [JoinType::Semi, JoinType::Anti] {
        let mut all = Vec::new();
        for sdb in [&plain, &pk, &bdcc] {
            let ctx = QueryContext::new(Arc::clone(sdb));
            let (out, _) = run_measured(&ctx, &mk(jt)).unwrap();
            all.push(canonical_rows(&out));
        }
        assert_eq!(all[0], all[1], "{jt:?}");
        assert_eq!(all[0], all[2], "{jt:?}");
    }
}

#[test]
fn filters_and_residuals_preserve_grouping() {
    // A filter between the scan and the sandwich join must not break
    // group alignment.
    let (plain, _, bdcc) = schemes();
    let mk = || {
        let b = PlanBuilder::new();
        let orders = filter(
            b.scan("orders", &["o_cust", "o_amount", "o_day"], vec![]),
            Expr::col("o_amount").gt(Expr::col("o_day")),
        );
        let customer = b.scan("customer", &["c_key", "c_nation"], vec![]);
        let j = join(orders, customer, &[("o_cust", "c_key")], Some(("FK_O_C", FkSide::Left)));
        aggregate(j, &["c_nation"], vec![AggSpec::new(AggFunc::Sum, Expr::col("o_amount"), "s")])
    };
    let pctx = QueryContext::new(Arc::clone(&plain));
    let (pout, _) = run_measured(&pctx, &mk()).unwrap();
    let bctx = QueryContext::new(Arc::clone(&bdcc));
    let (bout, _) = run_measured(&bctx, &mk()).unwrap();
    assert_eq!(canonical_rows(&pout), canonical_rows(&bout));
}

#[test]
fn propagation_requires_join_edges() {
    // Without the nation join in the query, a region predicate must not
    // restrict orders (the restriction walks the query's join graph) —
    // the query must still be answered correctly.
    let (plain, _, bdcc) = schemes();
    let mk = || {
        let b = PlanBuilder::new();
        // Region scanned but joined to nothing relevant — degenerate but
        // legal: cross-check via a join on constant keys.
        let orders =
            b.scan("orders", &["o_key", "o_amount"], vec![ColPredicate::lt("o_day", 10i64)]);
        aggregate(orders, &[], vec![AggSpec::new(AggFunc::Sum, Expr::col("o_amount"), "s")])
    };
    for sdb in [&plain, &bdcc] {
        let ctx = QueryContext::new(Arc::clone(sdb));
        let (out, _) = run_measured(&ctx, &mk()).unwrap();
        assert_eq!(out.rows(), 1);
    }
}

#[test]
fn scheme_names_and_enum() {
    assert_eq!(Scheme::Plain.name(), "Plain");
    assert_eq!(Scheme::Pk.name(), "PK");
    assert_eq!(Scheme::Bdcc.name(), "BDCC");
}

#[test]
fn unknown_fk_name_falls_back_to_hash_join() {
    // A join tagged with a non-existent FK must still plan (hash join).
    let (_, _, bdcc) = schemes();
    let b = PlanBuilder::new();
    let orders = b.scan("orders", &["o_cust"], vec![]);
    let customer = b.scan("customer", &["c_key"], vec![]);
    let plan = join(orders, customer, &[("o_cust", "c_key")], Some(("FK_NOPE", FkSide::Left)));
    let ctx = QueryContext::new(Arc::clone(&bdcc));
    let (out, _) = run_measured(&ctx, &plan).unwrap();
    assert_eq!(out.rows(), 8192);
}

#[test]
fn sort_limit_and_datum_roundtrip() {
    let (plain, _, _) = schemes();
    let b = PlanBuilder::new();
    let orders = b.scan("orders", &["o_key", "o_amount"], vec![]);
    let plan = sort(orders, vec![SortKey::desc("o_amount"), SortKey::asc("o_key")], Some(3));
    let ctx = QueryContext::new(Arc::clone(&plain));
    let (out, _) = run_measured(&ctx, &plan).unwrap();
    assert_eq!(out.rows(), 3);
    let amounts = out.columns[1].as_i64().unwrap();
    assert_eq!(amounts, &[999, 999, 999]);
    assert_eq!(out.columns[0].datum(0), Datum::Int(999));
}
