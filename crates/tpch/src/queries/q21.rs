//! Q21 — suppliers who kept orders waiting: the only multi-lineitem-alias
//! query; EXISTS/NOT EXISTS lowered to semi/anti joins with a
//! different-supplier residual.

use bdcc_exec::{
    aggregate, filter, join, join_full, sort, AggFunc, AggSpec, Batch, ColPredicate, Datum, Expr,
    FkSide, JoinType, PlanBuilder, Result, SortKey,
};

use super::QueryCtx;

pub fn run(ctx: &QueryCtx) -> Result<Batch> {
    let b = PlanBuilder::new();
    let nation = b.scan(
        "nation",
        &["n_nationkey"],
        vec![ColPredicate::eq("n_name", Datum::Str("SAUDI ARABIA".into()))],
    );
    let supplier = b.scan("supplier", &["s_suppkey", "s_name", "s_nationkey"], vec![]);
    let l1 = filter(
        b.scan("lineitem", &["l_orderkey", "l_suppkey", "l_receiptdate", "l_commitdate"], vec![]),
        Expr::col("l_receiptdate").gt(Expr::col("l_commitdate")),
    );
    let orders = b.scan(
        "orders",
        &["o_orderkey"],
        vec![ColPredicate::eq("o_orderstatus", Datum::Str("F".into()))],
    );
    let l2 = b.scan_as("lineitem", "l2", &["l_orderkey", "l_suppkey"], vec![]);
    let l3 = filter(
        b.scan_as(
            "lineitem",
            "l3",
            &["l_orderkey", "l_suppkey", "l_receiptdate", "l_commitdate"],
            vec![],
        ),
        Expr::col("l3_receiptdate").gt(Expr::col("l3_commitdate")),
    );

    let ls = join(l1, supplier, &[("l_suppkey", "s_suppkey")], Some(("FK_L_S", FkSide::Left)));
    let ln = join(ls, nation, &[("s_nationkey", "n_nationkey")], Some(("FK_S_N", FkSide::Left)));
    let lo = join(ln, orders, &[("l_orderkey", "o_orderkey")], Some(("FK_L_O", FkSide::Left)));
    // EXISTS another lineitem of the same order from a different supplier.
    let with_l2 = join_full(
        lo,
        l2,
        &[("l_orderkey", "l2_orderkey")],
        JoinType::Semi,
        None,
        Some(Expr::col("l2_suppkey").ne(Expr::col("l_suppkey"))),
    );
    // NOT EXISTS a *late* lineitem from a different supplier.
    let without_l3 = join_full(
        with_l2,
        l3,
        &[("l_orderkey", "l3_orderkey")],
        JoinType::Anti,
        None,
        Some(Expr::col("l3_suppkey").ne(Expr::col("l_suppkey"))),
    );
    let agg = aggregate(
        without_l3,
        &["s_name"],
        vec![AggSpec::new(AggFunc::Count, Expr::lit(1), "numwait")],
    );
    let plan = sort(agg, vec![SortKey::desc("numwait"), SortKey::asc("s_name")], Some(100));
    ctx.run(&plan)
}
