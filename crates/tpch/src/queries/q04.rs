//! Q4 — order priority checking: EXISTS lowered to a semi join from ORDERS
//! to late LINEITEMs.

use bdcc_exec::{
    aggregate, filter, join_full, sort, AggFunc, AggSpec, Batch, ColPredicate, Expr, FkSide,
    JoinType, PlanBuilder, Result, SortKey,
};

use super::{date, QueryCtx};

pub fn run(ctx: &QueryCtx) -> Result<Batch> {
    let b = PlanBuilder::new();
    let orders = b.scan(
        "orders",
        &["o_orderkey", "o_orderpriority"],
        vec![ColPredicate::range("o_orderdate", date("1993-07-01"), date("1993-10-01"))],
    );
    let late = filter(
        b.scan("lineitem", &["l_orderkey", "l_commitdate", "l_receiptdate"], vec![]),
        Expr::col("l_commitdate").lt(Expr::col("l_receiptdate")),
    );
    let semi = join_full(
        orders,
        late,
        &[("o_orderkey", "l_orderkey")],
        JoinType::Semi,
        Some(("FK_L_O", FkSide::Right)),
        None,
    );
    let agg = aggregate(
        semi,
        &["o_orderpriority"],
        vec![AggSpec::new(AggFunc::Count, Expr::lit(1), "order_count")],
    );
    let plan = sort(agg, vec![SortKey::asc("o_orderpriority")], None);
    ctx.run(&plan)
}
