//! Q3 — shipping priority: BUILDING customers, orders before 1995-03-15,
//! lineitems shipped after. Selection pushdown propagates the date
//! restriction from ORDERS to LINEITEM; the joins sandwich on the shared
//! D_DATE / customer-D_NATION instances.

use bdcc_exec::{
    aggregate, join, sort, AggFunc, AggSpec, Batch, ColPredicate, Datum, FkSide, PlanBuilder,
    Result, SortKey,
};

use super::{date, revenue_expr, QueryCtx};

pub fn run(ctx: &QueryCtx) -> Result<Batch> {
    let b = PlanBuilder::new();
    let customer = b.scan(
        "customer",
        &["c_custkey"],
        vec![ColPredicate::eq("c_mktsegment", Datum::Str("BUILDING".into()))],
    );
    let orders = b.scan(
        "orders",
        &["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"],
        vec![ColPredicate::lt("o_orderdate", date("1995-03-15"))],
    );
    let lineitem = b.scan(
        "lineitem",
        &["l_orderkey", "l_extendedprice", "l_discount"],
        vec![ColPredicate::gt("l_shipdate", date("1995-03-15"))],
    );
    let oc = join(orders, customer, &[("o_custkey", "c_custkey")], Some(("FK_O_C", FkSide::Left)));
    let lo = join(lineitem, oc, &[("l_orderkey", "o_orderkey")], Some(("FK_L_O", FkSide::Left)));
    let agg = aggregate(
        lo,
        &["l_orderkey", "o_orderdate", "o_shippriority"],
        vec![AggSpec::new(AggFunc::Sum, revenue_expr(), "revenue")],
    );
    let plan = sort(agg, vec![SortKey::desc("revenue"), SortKey::asc("o_orderdate")], Some(10));
    ctx.run(&plan)
}
