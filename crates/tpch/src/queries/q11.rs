//! Q11 — important stock identification in GERMANY: the scalar total is
//! computed first and injected as a literal threshold (decorrelation).

use bdcc_exec::{
    aggregate, filter, join, sort, AggFunc, AggSpec, Batch, ColPredicate, Datum, Expr, FkSide,
    Node, PlanBuilder, Result, SortKey,
};

use super::QueryCtx;

fn german_partsupp(b: &PlanBuilder) -> Node {
    let nation = b.scan(
        "nation",
        &["n_nationkey"],
        vec![ColPredicate::eq("n_name", Datum::Str("GERMANY".into()))],
    );
    let supplier = b.scan("supplier", &["s_suppkey", "s_nationkey"], vec![]);
    let partsupp =
        b.scan("partsupp", &["ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"], vec![]);
    let sn =
        join(supplier, nation, &[("s_nationkey", "n_nationkey")], Some(("FK_S_N", FkSide::Left)));
    join(partsupp, sn, &[("ps_suppkey", "s_suppkey")], Some(("FK_PS_S", FkSide::Left)))
}

pub fn run(ctx: &QueryCtx) -> Result<Batch> {
    let value = Expr::col("ps_supplycost").mul(Expr::col("ps_availqty"));
    // Phase 1: total German stock value.
    let b = PlanBuilder::new();
    let total_plan = aggregate(
        german_partsupp(&b),
        &[],
        vec![AggSpec::new(AggFunc::Sum, value.clone(), "total")],
    );
    let total = ctx.scalar_f64(&total_plan)?;
    let threshold = total * 0.0001 / ctx.sf;

    // Phase 2: per-part value above the threshold.
    let b = PlanBuilder::new();
    let agg = aggregate(
        german_partsupp(&b),
        &["ps_partkey"],
        vec![AggSpec::new(AggFunc::Sum, value, "value")],
    );
    let keep = filter(agg, Expr::col("value").gt(Expr::lit(threshold)));
    let plan = sort(keep, vec![SortKey::desc("value")], None);
    ctx.run(&plan)
}
