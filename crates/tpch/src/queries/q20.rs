//! Q20 — potential part promotion: CANADA suppliers holding excess stock
//! of forest parts. Nested subqueries lowered to aggregates and semi joins.

use bdcc_exec::{
    aggregate, filter, join, join_full, project, sort, AggFunc, AggSpec, Batch, ColPredicate,
    Datum, Expr, FkSide, JoinType, LikePattern, PlanBuilder, Result, SortKey,
};

use super::{date, QueryCtx};

pub fn run(ctx: &QueryCtx) -> Result<Batch> {
    let b = PlanBuilder::new();
    // Half the 1994 shipped quantity per (part, supplier).
    let li = b.scan(
        "lineitem",
        &["l_partkey", "l_suppkey", "l_quantity"],
        vec![ColPredicate::range("l_shipdate", date("1994-01-01"), date("1995-01-01"))],
    );
    let shipped = aggregate(
        li,
        &["l_partkey", "l_suppkey"],
        vec![AggSpec::new(AggFunc::Sum, Expr::col("l_quantity"), "sum_qty")],
    );
    let shipped = project(
        shipped,
        vec![
            (Expr::col("l_partkey"), "sq_partkey"),
            (Expr::col("l_suppkey"), "sq_suppkey"),
            (Expr::lit(0.5).mul(Expr::col("sum_qty")), "half_qty"),
        ],
    );
    // Partsupp rows for forest parts with availqty above the threshold.
    let forest = b.scan(
        "part",
        &["p_partkey"],
        vec![ColPredicate::like("p_name", LikePattern::StartsWith("forest".into()))],
    );
    let ps = b.scan("partsupp", &["ps_partkey", "ps_suppkey", "ps_availqty"], vec![]);
    let ps = join_full(
        ps,
        forest,
        &[("ps_partkey", "p_partkey")],
        JoinType::Semi,
        Some(("FK_PS_P", FkSide::Left)),
        None,
    );
    let ps = join(ps, shipped, &[("ps_partkey", "sq_partkey"), ("ps_suppkey", "sq_suppkey")], None);
    let excess = filter(ps, Expr::col("ps_availqty").gt(Expr::col("half_qty")));
    let supp_keys = project(excess, vec![(Expr::col("ps_suppkey"), "x_suppkey")]);
    // CANADA suppliers among them.
    let nation = b.scan(
        "nation",
        &["n_nationkey"],
        vec![ColPredicate::eq("n_name", Datum::Str("CANADA".into()))],
    );
    let supplier = b.scan("supplier", &["s_suppkey", "s_name", "s_address", "s_nationkey"], vec![]);
    let sn =
        join(supplier, nation, &[("s_nationkey", "n_nationkey")], Some(("FK_S_N", FkSide::Left)));
    let out = join_full(sn, supp_keys, &[("s_suppkey", "x_suppkey")], JoinType::Semi, None, None);
    let out =
        project(out, vec![(Expr::col("s_name"), "s_name"), (Expr::col("s_address"), "s_address")]);
    let plan = sort(out, vec![SortKey::asc("s_name")], None);
    ctx.run(&plan)
}
