//! Q12 — shipping modes and order priority: MAIL/SHIP lineitems received
//! in 1994 that were committed before receipt and shipped before commit.
//! The BDCC setup benefits from the o_orderdate / l_receiptdate
//! correlation via MinMax pruning.

use bdcc_exec::{
    aggregate, filter, join, sort, AggFunc, AggSpec, Batch, ColPredicate, Datum, Expr, FkSide,
    PlanBuilder, Result, SortKey,
};

use super::{date, QueryCtx};

pub fn run(ctx: &QueryCtx) -> Result<Batch> {
    let b = PlanBuilder::new();
    let lineitem = filter(
        b.scan(
            "lineitem",
            &["l_orderkey", "l_shipmode", "l_shipdate", "l_commitdate", "l_receiptdate"],
            vec![
                ColPredicate::in_list(
                    "l_shipmode",
                    vec![Datum::Str("MAIL".into()), Datum::Str("SHIP".into())],
                ),
                ColPredicate::range("l_receiptdate", date("1994-01-01"), date("1995-01-01")),
            ],
        ),
        Expr::col("l_commitdate")
            .lt(Expr::col("l_receiptdate"))
            .and(Expr::col("l_shipdate").lt(Expr::col("l_commitdate"))),
    );
    let orders = b.scan("orders", &["o_orderkey", "o_orderpriority"], vec![]);
    let lo =
        join(lineitem, orders, &[("l_orderkey", "o_orderkey")], Some(("FK_L_O", FkSide::Left)));
    let high = Expr::if_else(
        Expr::col("o_orderpriority")
            .eq(Expr::lit("1-URGENT"))
            .or(Expr::col("o_orderpriority").eq(Expr::lit("2-HIGH"))),
        Expr::lit(1),
        Expr::lit(0),
    );
    let low = Expr::if_else(
        Expr::col("o_orderpriority")
            .ne(Expr::lit("1-URGENT"))
            .and(Expr::col("o_orderpriority").ne(Expr::lit("2-HIGH"))),
        Expr::lit(1),
        Expr::lit(0),
    );
    let agg = aggregate(
        lo,
        &["l_shipmode"],
        vec![
            AggSpec::new(AggFunc::Sum, high, "high_line_count"),
            AggSpec::new(AggFunc::Sum, low, "low_line_count"),
        ],
    );
    let plan = sort(agg, vec![SortKey::asc("l_shipmode")], None);
    ctx.run(&plan)
}
