//! Q2 — minimum cost supplier: the correlated MIN subquery is lowered to
//! an aggregate-then-rejoin on `ps_partkey` with an equality filter on the
//! supply cost.

use bdcc_exec::{
    aggregate, filter, join, sort, AggFunc, AggSpec, Batch, ColPredicate, Datum, Expr, FkSide,
    LikePattern, PlanBuilder, Result, SortKey,
};

use super::QueryCtx;

pub fn run(ctx: &QueryCtx) -> Result<Batch> {
    let b = PlanBuilder::new();
    let europe_suppliers = |b: &PlanBuilder| {
        let region = b.scan(
            "region",
            &["r_regionkey"],
            vec![ColPredicate::eq("r_name", Datum::Str("EUROPE".into()))],
        );
        let nation = b.scan("nation", &["n_nationkey", "n_name", "n_regionkey"], vec![]);
        let nr =
            join(nation, region, &[("n_regionkey", "r_regionkey")], Some(("FK_N_R", FkSide::Left)));
        let supplier = b.scan(
            "supplier",
            &[
                "s_suppkey",
                "s_name",
                "s_address",
                "s_nationkey",
                "s_phone",
                "s_acctbal",
                "s_comment",
            ],
            vec![],
        );
        join(supplier, nr, &[("s_nationkey", "n_nationkey")], Some(("FK_S_N", FkSide::Left)))
    };

    // Subquery: minimum supply cost per part among EUROPE suppliers.
    let ps_min = b.scan("partsupp", &["ps_partkey", "ps_suppkey", "ps_supplycost"], vec![]);
    let ps_min = join(
        ps_min,
        europe_suppliers(&b),
        &[("ps_suppkey", "s_suppkey")],
        Some(("FK_PS_S", FkSide::Left)),
    );
    let min_cost = aggregate(
        ps_min,
        &["ps_partkey"],
        vec![AggSpec::new(AggFunc::Min, Expr::col("ps_supplycost"), "min_cost")],
    );
    let min_cost = bdcc_exec::project(
        min_cost,
        vec![(Expr::col("ps_partkey"), "mc_partkey"), (Expr::col("min_cost"), "min_cost")],
    );

    // Main block.
    let part = b.scan(
        "part",
        &["p_partkey", "p_mfgr"],
        vec![
            ColPredicate::eq("p_size", 15i64),
            ColPredicate::like("p_type", LikePattern::EndsWith("BRASS".into())),
        ],
    );
    let ps = b.scan("partsupp", &["ps_partkey", "ps_suppkey", "ps_supplycost"], vec![]);
    let ps_part = join(ps, part, &[("ps_partkey", "p_partkey")], Some(("FK_PS_P", FkSide::Left)));
    let full = join(
        ps_part,
        europe_suppliers(&b),
        &[("ps_suppkey", "s_suppkey")],
        Some(("FK_PS_S", FkSide::Left)),
    );
    let with_min = join(full, min_cost, &[("ps_partkey", "mc_partkey")], None);
    let best = filter(with_min, Expr::col("ps_supplycost").eq(Expr::col("min_cost")));
    let out = bdcc_exec::project(
        best,
        vec![
            (Expr::col("s_acctbal"), "s_acctbal"),
            (Expr::col("s_name"), "s_name"),
            (Expr::col("n_name"), "n_name"),
            (Expr::col("p_partkey"), "p_partkey"),
            (Expr::col("p_mfgr"), "p_mfgr"),
            (Expr::col("s_address"), "s_address"),
            (Expr::col("s_phone"), "s_phone"),
            (Expr::col("s_comment"), "s_comment"),
        ],
    );
    let plan = sort(
        out,
        vec![
            SortKey::desc("s_acctbal"),
            SortKey::asc("n_name"),
            SortKey::asc("s_name"),
            SortKey::asc("p_partkey"),
        ],
        Some(100),
    );
    ctx.run(&plan)
}
