//! Q8 — national market share of BRAZIL within AMERICA for ECONOMY
//! ANODIZED STEEL: the case-sum / sum ratio is computed by projecting the
//! two aggregates.

use bdcc_exec::{
    aggregate, join, sort, AggFunc, AggSpec, Batch, ColPredicate, Datum, Expr, FkSide, PlanBuilder,
    Result, SortKey,
};

use super::{date, revenue_expr, QueryCtx};

pub fn run(ctx: &QueryCtx) -> Result<Batch> {
    let b = PlanBuilder::new();
    let part = b.scan(
        "part",
        &["p_partkey"],
        vec![ColPredicate::eq("p_type", Datum::Str("ECONOMY ANODIZED STEEL".into()))],
    );
    let region = b.scan(
        "region",
        &["r_regionkey"],
        vec![ColPredicate::eq("r_name", Datum::Str("AMERICA".into()))],
    );
    let n1 = b.scan_as("nation", "n1", &["n_nationkey", "n_regionkey"], vec![]);
    let n2 = b.scan_as("nation", "n2", &["n_nationkey", "n_name"], vec![]);
    let customer = b.scan("customer", &["c_custkey", "c_nationkey"], vec![]);
    let orders = b.scan(
        "orders",
        &["o_orderkey", "o_custkey", "o_orderdate"],
        vec![ColPredicate::between("o_orderdate", date("1995-01-01"), date("1996-12-31"))],
    );
    let lineitem = b.scan(
        "lineitem",
        &["l_orderkey", "l_partkey", "l_suppkey", "l_extendedprice", "l_discount"],
        vec![],
    );
    let supplier = b.scan("supplier", &["s_suppkey", "s_nationkey"], vec![]);

    let nr = join(n1, region, &[("n1_regionkey", "r_regionkey")], Some(("FK_N_R", FkSide::Left)));
    let cn = join(customer, nr, &[("c_nationkey", "n1_nationkey")], Some(("FK_C_N", FkSide::Left)));
    let oc = join(orders, cn, &[("o_custkey", "c_custkey")], Some(("FK_O_C", FkSide::Left)));
    let lo = join(lineitem, oc, &[("l_orderkey", "o_orderkey")], Some(("FK_L_O", FkSide::Left)));
    let lp = join(lo, part, &[("l_partkey", "p_partkey")], Some(("FK_L_P", FkSide::Left)));
    let ls = join(lp, supplier, &[("l_suppkey", "s_suppkey")], Some(("FK_L_S", FkSide::Left)));
    let full = join(ls, n2, &[("s_nationkey", "n2_nationkey")], None);

    let vol = bdcc_exec::project(
        full,
        vec![
            (Expr::col("o_orderdate").year(), "o_year"),
            (revenue_expr(), "volume"),
            (
                Expr::if_else(
                    Expr::col("n2_name").eq(Expr::lit("BRAZIL")),
                    revenue_expr(),
                    Expr::lit(0.0),
                ),
                "brazil_volume",
            ),
        ],
    );
    let agg = aggregate(
        vol,
        &["o_year"],
        vec![
            AggSpec::new(AggFunc::Sum, Expr::col("brazil_volume"), "brazil"),
            AggSpec::new(AggFunc::Sum, Expr::col("volume"), "total"),
        ],
    );
    let share = bdcc_exec::project(
        agg,
        vec![
            (Expr::col("o_year"), "o_year"),
            (Expr::col("brazil").div(Expr::col("total")), "mkt_share"),
        ],
    );
    let plan = sort(share, vec![SortKey::asc("o_year")], None);
    ctx.run(&plan)
}
