//! The 22 TPC-H queries as logical plans.
//!
//! Each query is a function from a [`QueryCtx`] to a result batch. Most
//! queries are a single plan; the four with scalar subqueries (Q11, Q15,
//! Q17 via a correlated average folded into the plan, Q22) run a small
//! first phase and inject the scalar as a literal — the standard
//! decorrelation an optimizer would perform. Validation parameters follow
//! the TPC-H specification's reference query set.

use bdcc_exec::run::run_plan;
use bdcc_exec::{Batch, Expr, Node, QueryContext, Result};
use bdcc_storage::{parse_date, Datum};

mod q01;
mod q02;
mod q03;
mod q04;
mod q05;
mod q06;
mod q07;
mod q08;
mod q09;
mod q10;
mod q11;
mod q12;
mod q13;
mod q14;
mod q15;
mod q16;
mod q17;
mod q18;
mod q19;
mod q20;
mod q21;
mod q22;

/// Execution context handed to each query.
pub struct QueryCtx {
    pub qc: QueryContext,
    /// Scale factor (Q11's HAVING fraction is `0.0001 / SF`).
    pub sf: f64,
}

impl QueryCtx {
    pub fn new(qc: QueryContext, sf: f64) -> QueryCtx {
        QueryCtx { qc, sf }
    }

    /// Execute one plan to completion.
    pub fn run(&self, plan: &Node) -> Result<Batch> {
        run_plan(&self.qc, plan)
    }

    /// Execute a plan expected to yield a single scalar (row 0, col 0).
    pub fn scalar_f64(&self, plan: &Node) -> Result<f64> {
        let b = self.run(plan)?;
        if b.rows() == 0 {
            return Ok(0.0);
        }
        Ok(b.columns[0].datum(0).as_float().unwrap_or(0.0))
    }
}

/// One registered query.
pub struct Query {
    pub id: usize,
    pub name: &'static str,
    pub run: fn(&QueryCtx) -> Result<Batch>,
}

/// All 22 queries in order.
pub fn all_queries() -> Vec<Query> {
    vec![
        Query { id: 1, name: "Q01 pricing summary", run: q01::run },
        Query { id: 2, name: "Q02 minimum cost supplier", run: q02::run },
        Query { id: 3, name: "Q03 shipping priority", run: q03::run },
        Query { id: 4, name: "Q04 order priority checking", run: q04::run },
        Query { id: 5, name: "Q05 local supplier volume", run: q05::run },
        Query { id: 6, name: "Q06 forecasting revenue change", run: q06::run },
        Query { id: 7, name: "Q07 volume shipping", run: q07::run },
        Query { id: 8, name: "Q08 national market share", run: q08::run },
        Query { id: 9, name: "Q09 product type profit", run: q09::run },
        Query { id: 10, name: "Q10 returned item reporting", run: q10::run },
        Query { id: 11, name: "Q11 important stock identification", run: q11::run },
        Query { id: 12, name: "Q12 shipping modes and order priority", run: q12::run },
        Query { id: 13, name: "Q13 customer distribution", run: q13::run },
        Query { id: 14, name: "Q14 promotion effect", run: q14::run },
        Query { id: 15, name: "Q15 top supplier", run: q15::run },
        Query { id: 16, name: "Q16 parts/supplier relationship", run: q16::run },
        Query { id: 17, name: "Q17 small-quantity-order revenue", run: q17::run },
        Query { id: 18, name: "Q18 large volume customer", run: q18::run },
        Query { id: 19, name: "Q19 discounted revenue", run: q19::run },
        Query { id: 20, name: "Q20 potential part promotion", run: q20::run },
        Query { id: 21, name: "Q21 suppliers who kept orders waiting", run: q21::run },
        Query { id: 22, name: "Q22 global sales opportunity", run: q22::run },
    ]
}

// --- shared helpers --------------------------------------------------------

/// Date literal. The query definitions feed this compile-time-constant
/// strings, so a parse failure here is a programming error in a query —
/// the typed [`bdcc_storage::StorageError::InvalidDate`] from `parse_date`
/// surfaces in the panic message rather than a bare `expect`.
pub(crate) fn date(s: &str) -> Datum {
    Datum::Date(parse_date(s).unwrap_or_else(|e| panic!("bad query date literal: {e}")))
}

/// `l_extendedprice * (1 - l_discount)` — the ubiquitous revenue term.
pub(crate) fn revenue_expr() -> Expr {
    Expr::col("l_extendedprice").mul(Expr::lit(1.0).sub(Expr::col("l_discount")))
}
