//! Q1 — pricing summary report: a 95–97% scan of LINEITEM with a wide
//! aggregation. The paper notes no indexing method accelerates it.

use bdcc_exec::{
    aggregate, sort, AggFunc, AggSpec, Batch, ColPredicate, Expr, PlanBuilder, Result, SortKey,
};

use super::{date, QueryCtx};

pub fn run(ctx: &QueryCtx) -> Result<Batch> {
    let b = PlanBuilder::new();
    let scan = b.scan(
        "lineitem",
        &["l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice", "l_discount", "l_tax"],
        vec![ColPredicate::le("l_shipdate", date("1998-09-02"))],
    );
    let disc_price = Expr::col("l_extendedprice").mul(Expr::lit(1.0).sub(Expr::col("l_discount")));
    let charge = disc_price.clone().mul(Expr::lit(1.0).add(Expr::col("l_tax")));
    let agg = aggregate(
        scan,
        &["l_returnflag", "l_linestatus"],
        vec![
            AggSpec::new(AggFunc::Sum, Expr::col("l_quantity"), "sum_qty"),
            AggSpec::new(AggFunc::Sum, Expr::col("l_extendedprice"), "sum_base_price"),
            AggSpec::new(AggFunc::Sum, disc_price, "sum_disc_price"),
            AggSpec::new(AggFunc::Sum, charge, "sum_charge"),
            AggSpec::new(AggFunc::Avg, Expr::col("l_quantity"), "avg_qty"),
            AggSpec::new(AggFunc::Avg, Expr::col("l_extendedprice"), "avg_price"),
            AggSpec::new(AggFunc::Avg, Expr::col("l_discount"), "avg_disc"),
            AggSpec::new(AggFunc::Count, Expr::lit(1), "count_order"),
        ],
    );
    let plan = sort(agg, vec![SortKey::asc("l_returnflag"), SortKey::asc("l_linestatus")], None);
    ctx.run(&plan)
}
