//! Q19 — discounted revenue: three disjunctive brand/container/quantity
//! branches evaluated as a join residual.

use bdcc_exec::{
    aggregate, join_full, AggFunc, AggSpec, Batch, ColPredicate, Datum, Expr, FkSide, JoinType,
    PlanBuilder, Result,
};

use super::{revenue_expr, QueryCtx};

fn branch(brand: &str, containers: [&str; 4], qlo: f64, qhi: f64, size_hi: i64) -> Expr {
    Expr::col("p_brand")
        .eq(Expr::lit(brand))
        .and(
            Expr::col("p_container")
                .in_list(containers.iter().map(|c| Datum::Str(c.to_string())).collect()),
        )
        .and(Expr::col("l_quantity").ge(Expr::lit(qlo)))
        .and(Expr::col("l_quantity").le(Expr::lit(qhi)))
        .and(Expr::col("p_size").ge(Expr::lit(1)))
        .and(Expr::col("p_size").le(Expr::lit(size_hi)))
}

pub fn run(ctx: &QueryCtx) -> Result<Batch> {
    let b = PlanBuilder::new();
    let lineitem = b.scan(
        "lineitem",
        &["l_partkey", "l_quantity", "l_extendedprice", "l_discount"],
        vec![
            ColPredicate::in_list(
                "l_shipmode",
                vec![Datum::Str("AIR".into()), Datum::Str("REG AIR".into())],
            ),
            ColPredicate::eq("l_shipinstruct", Datum::Str("DELIVER IN PERSON".into())),
        ],
    );
    let part = b.scan("part", &["p_partkey", "p_brand", "p_container", "p_size"], vec![]);
    let cond = branch("Brand#12", ["SM CASE", "SM BOX", "SM PACK", "SM PKG"], 1.0, 11.0, 5)
        .or(branch("Brand#23", ["MED BAG", "MED BOX", "MED PKG", "MED PACK"], 10.0, 20.0, 10))
        .or(branch("Brand#34", ["LG CASE", "LG BOX", "LG PACK", "LG PKG"], 20.0, 30.0, 15));
    let lp = join_full(
        lineitem,
        part,
        &[("l_partkey", "p_partkey")],
        JoinType::Inner,
        Some(("FK_L_P", FkSide::Left)),
        Some(cond),
    );
    let plan = aggregate(lp, &[], vec![AggSpec::new(AggFunc::Sum, revenue_expr(), "revenue")]);
    ctx.run(&plan)
}
