//! Q9 — product type profit for parts named like '%green%', grouped by
//! nation and year. Exercises the composite PARTSUPP join
//! (partkey, suppkey).

use bdcc_exec::{
    aggregate, join, sort, AggFunc, AggSpec, Batch, ColPredicate, Expr, FkSide, LikePattern,
    PlanBuilder, Result, SortKey,
};

use super::QueryCtx;

pub fn run(ctx: &QueryCtx) -> Result<Batch> {
    let b = PlanBuilder::new();
    let part = b.scan(
        "part",
        &["p_partkey"],
        vec![ColPredicate::like("p_name", LikePattern::Contains("green".into()))],
    );
    let lineitem = b.scan(
        "lineitem",
        &["l_orderkey", "l_partkey", "l_suppkey", "l_quantity", "l_extendedprice", "l_discount"],
        vec![],
    );
    let supplier = b.scan("supplier", &["s_suppkey", "s_nationkey"], vec![]);
    let partsupp = b.scan("partsupp", &["ps_partkey", "ps_suppkey", "ps_supplycost"], vec![]);
    let orders = b.scan("orders", &["o_orderkey", "o_orderdate"], vec![]);
    let nation = b.scan("nation", &["n_nationkey", "n_name"], vec![]);

    let lp = join(lineitem, part, &[("l_partkey", "p_partkey")], Some(("FK_L_P", FkSide::Left)));
    let lps = join(lp, partsupp, &[("l_partkey", "ps_partkey"), ("l_suppkey", "ps_suppkey")], None);
    let lo = join(lps, orders, &[("l_orderkey", "o_orderkey")], Some(("FK_L_O", FkSide::Left)));
    let lsup = join(lo, supplier, &[("l_suppkey", "s_suppkey")], Some(("FK_L_S", FkSide::Left)));
    let full =
        join(lsup, nation, &[("s_nationkey", "n_nationkey")], Some(("FK_S_N", FkSide::Left)));

    let amount = Expr::col("l_extendedprice")
        .mul(Expr::lit(1.0).sub(Expr::col("l_discount")))
        .sub(Expr::col("ps_supplycost").mul(Expr::col("l_quantity")));
    let profit = bdcc_exec::project(
        full,
        vec![
            (Expr::col("n_name"), "nation"),
            (Expr::col("o_orderdate").year(), "o_year"),
            (amount, "amount"),
        ],
    );
    let agg = aggregate(
        profit,
        &["nation", "o_year"],
        vec![AggSpec::new(AggFunc::Sum, Expr::col("amount"), "sum_profit")],
    );
    let plan = sort(agg, vec![SortKey::asc("nation"), SortKey::desc("o_year")], None);
    ctx.run(&plan)
}
