//! Q16 — parts/supplier relationship: excluded brand/type/sizes, suppliers
//! without complaints, COUNT(DISTINCT ps_suppkey). The paper notes the
//! sandwiched distinct-count shrinks the hash table 25× at the cost of a
//! hash join instead of the PK merge join.

use bdcc_exec::{
    aggregate, join, join_full, sort, AggFunc, AggSpec, Batch, ColPredicate, Datum, Expr, FkSide,
    JoinType, LikePattern, PlanBuilder, Result, SortKey,
};

use super::QueryCtx;

pub fn run(ctx: &QueryCtx) -> Result<Batch> {
    let b = PlanBuilder::new();
    let part = b.scan(
        "part",
        &["p_partkey", "p_brand", "p_type", "p_size"],
        vec![
            ColPredicate::ne("p_brand", Datum::Str("Brand#45".into())),
            ColPredicate::not_like("p_type", LikePattern::StartsWith("MEDIUM POLISHED".into())),
            ColPredicate::in_list(
                "p_size",
                [49i64, 14, 23, 45, 19, 3, 36, 9].map(Datum::Int).to_vec(),
            ),
        ],
    );
    let partsupp = b.scan("partsupp", &["ps_partkey", "ps_suppkey"], vec![]);
    let complainers = b.scan(
        "supplier",
        &["s_suppkey"],
        vec![ColPredicate::like(
            "s_comment",
            LikePattern::ContainsSeq("Customer".into(), "Complaints".into()),
        )],
    );
    let ps = join(partsupp, part, &[("ps_partkey", "p_partkey")], Some(("FK_PS_P", FkSide::Left)));
    let ps = join_full(
        ps,
        complainers,
        &[("ps_suppkey", "s_suppkey")],
        JoinType::Anti,
        Some(("FK_PS_S", FkSide::Left)),
        None,
    );
    let agg = aggregate(
        ps,
        &["p_brand", "p_type", "p_size"],
        vec![AggSpec::new(AggFunc::CountDistinct, Expr::col("ps_suppkey"), "supplier_cnt")],
    );
    let plan = sort(
        agg,
        vec![
            SortKey::desc("supplier_cnt"),
            SortKey::asc("p_brand"),
            SortKey::asc("p_type"),
            SortKey::asc("p_size"),
        ],
        None,
    );
    ctx.run(&plan)
}
