//! Q14 — promotion effect: PROMO revenue share for September 1995.

use bdcc_exec::{
    aggregate, join, project, AggFunc, AggSpec, Batch, ColPredicate, Expr, FkSide, LikePattern,
    PlanBuilder, Result,
};

use super::{date, revenue_expr, QueryCtx};

pub fn run(ctx: &QueryCtx) -> Result<Batch> {
    let b = PlanBuilder::new();
    let lineitem = b.scan(
        "lineitem",
        &["l_partkey", "l_extendedprice", "l_discount"],
        vec![ColPredicate::range("l_shipdate", date("1995-09-01"), date("1995-10-01"))],
    );
    let part = b.scan("part", &["p_partkey", "p_type"], vec![]);
    let lp = join(lineitem, part, &[("l_partkey", "p_partkey")], Some(("FK_L_P", FkSide::Left)));
    let promo = Expr::if_else(
        Expr::col("p_type").like(LikePattern::StartsWith("PROMO".into())),
        revenue_expr(),
        Expr::lit(0.0),
    );
    let agg = aggregate(
        lp,
        &[],
        vec![
            AggSpec::new(AggFunc::Sum, promo, "promo"),
            AggSpec::new(AggFunc::Sum, revenue_expr(), "total"),
        ],
    );
    let plan = project(
        agg,
        vec![(Expr::lit(100.0).mul(Expr::col("promo")).div(Expr::col("total")), "promo_revenue")],
    );
    ctx.run(&plan)
}
