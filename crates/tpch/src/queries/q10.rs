//! Q10 — returned item reporting: 1993 Q4 orders with returned lineitems,
//! top 20 customers by lost revenue. The paper highlights its sandwiched
//! join and reduced materialization.

use bdcc_exec::{
    aggregate, join, sort, AggFunc, AggSpec, Batch, ColPredicate, Datum, FkSide, PlanBuilder,
    Result, SortKey,
};

use super::{date, revenue_expr, QueryCtx};

pub fn run(ctx: &QueryCtx) -> Result<Batch> {
    let b = PlanBuilder::new();
    let customer = b.scan(
        "customer",
        &["c_custkey", "c_name", "c_acctbal", "c_phone", "c_nationkey", "c_address", "c_comment"],
        vec![],
    );
    let orders = b.scan(
        "orders",
        &["o_orderkey", "o_custkey"],
        vec![ColPredicate::range("o_orderdate", date("1993-10-01"), date("1994-01-01"))],
    );
    let lineitem = b.scan(
        "lineitem",
        &["l_orderkey", "l_extendedprice", "l_discount"],
        vec![ColPredicate::eq("l_returnflag", Datum::Str("R".into()))],
    );
    let nation = b.scan("nation", &["n_nationkey", "n_name"], vec![]);

    let lo =
        join(lineitem, orders, &[("l_orderkey", "o_orderkey")], Some(("FK_L_O", FkSide::Left)));
    let loc = join(lo, customer, &[("o_custkey", "c_custkey")], Some(("FK_O_C", FkSide::Left)));
    let full = join(loc, nation, &[("c_nationkey", "n_nationkey")], Some(("FK_C_N", FkSide::Left)));
    let agg = aggregate(
        full,
        &["c_custkey", "c_name", "c_acctbal", "c_phone", "n_name", "c_address", "c_comment"],
        vec![AggSpec::new(AggFunc::Sum, revenue_expr(), "revenue")],
    );
    let plan = sort(agg, vec![SortKey::desc("revenue"), SortKey::asc("c_custkey")], Some(20));
    ctx.run(&plan)
}
