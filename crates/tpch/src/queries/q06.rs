//! Q6 — forecasting revenue change: a pure LINEITEM selection that BDCC
//! accelerates through the o_orderdate ↔ l_shipdate correlation (MinMax
//! pushdown on the clustered layout).

use bdcc_exec::{aggregate, AggFunc, AggSpec, Batch, ColPredicate, Expr, PlanBuilder, Result};

use super::{date, QueryCtx};

pub fn run(ctx: &QueryCtx) -> Result<Batch> {
    let b = PlanBuilder::new();
    let scan = b.scan(
        "lineitem",
        &["l_extendedprice", "l_discount"],
        vec![
            ColPredicate::range("l_shipdate", date("1994-01-01"), date("1995-01-01")),
            ColPredicate::between("l_discount", 0.05f64, 0.07f64),
            ColPredicate::lt("l_quantity", 24.0f64),
        ],
    );
    let plan = aggregate(
        scan,
        &[],
        vec![AggSpec::new(
            AggFunc::Sum,
            Expr::col("l_extendedprice").mul(Expr::col("l_discount")),
            "revenue",
        )],
    );
    ctx.run(&plan)
}
