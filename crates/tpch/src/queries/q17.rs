//! Q17 — small-quantity-order revenue for Brand#23 MED BOX parts: the
//! correlated AVG subquery becomes an aggregate-and-rejoin on partkey.

use bdcc_exec::{
    aggregate, filter, join, project, AggFunc, AggSpec, Batch, ColPredicate, Datum, Expr, FkSide,
    PlanBuilder, Result,
};

use super::QueryCtx;

pub fn run(ctx: &QueryCtx) -> Result<Batch> {
    let b = PlanBuilder::new();
    let part = b.scan(
        "part",
        &["p_partkey"],
        vec![
            ColPredicate::eq("p_brand", Datum::Str("Brand#23".into())),
            ColPredicate::eq("p_container", Datum::Str("MED BOX".into())),
        ],
    );
    // Average quantity per selected part.
    let li_avg = b.scan("lineitem", &["l_partkey", "l_quantity"], vec![]);
    let li_avg = join(li_avg, part, &[("l_partkey", "p_partkey")], Some(("FK_L_P", FkSide::Left)));
    let avg = aggregate(
        li_avg,
        &["l_partkey"],
        vec![AggSpec::new(AggFunc::Avg, Expr::col("l_quantity"), "avg_qty")],
    );
    let avg = project(
        avg,
        vec![
            (Expr::col("l_partkey"), "a_partkey"),
            (Expr::lit(0.2).mul(Expr::col("avg_qty")), "threshold"),
        ],
    );
    // Lineitems below the per-part threshold.
    let li = b.scan("lineitem", &["l_partkey", "l_quantity", "l_extendedprice"], vec![]);
    let joined = join(li, avg, &[("l_partkey", "a_partkey")], None);
    let small = filter(joined, Expr::col("l_quantity").lt(Expr::col("threshold")));
    let total = aggregate(
        small,
        &[],
        vec![AggSpec::new(AggFunc::Sum, Expr::col("l_extendedprice"), "sum_price")],
    );
    let plan = project(total, vec![(Expr::col("sum_price").div(Expr::lit(7.0)), "avg_yearly")]);
    ctx.run(&plan)
}
