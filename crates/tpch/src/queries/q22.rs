//! Q22 — global sales opportunity: phone country codes, an average-balance
//! scalar, and NOT EXISTS lowered to an anti join against ORDERS.

use bdcc_exec::{
    aggregate, filter, join_full, project, sort, AggFunc, AggSpec, Batch, Datum, Expr, FkSide,
    JoinType, Node, PlanBuilder, Result, SortKey,
};

use super::QueryCtx;

fn codes() -> Vec<Datum> {
    ["13", "31", "23", "29", "30", "18", "17"].iter().map(|c| Datum::Str(c.to_string())).collect()
}

fn coded_customers(b: &PlanBuilder) -> Node {
    let customer = b.scan("customer", &["c_custkey", "c_phone", "c_acctbal"], vec![]);
    let with_code = project(
        customer,
        vec![
            (Expr::col("c_custkey"), "c_custkey"),
            (Expr::col("c_acctbal"), "c_acctbal"),
            (Expr::col("c_phone").prefix(2), "cntrycode"),
        ],
    );
    filter(with_code, Expr::col("cntrycode").in_list(codes()))
}

pub fn run(ctx: &QueryCtx) -> Result<Batch> {
    // Phase 1: average positive balance of coded customers.
    let b = PlanBuilder::new();
    let positive = filter(coded_customers(&b), Expr::col("c_acctbal").gt(Expr::lit(0.0)));
    let avg_plan = aggregate(
        positive,
        &[],
        vec![AggSpec::new(AggFunc::Avg, Expr::col("c_acctbal"), "avg_bal")],
    );
    let avg_bal = ctx.scalar_f64(&avg_plan)?;

    // Phase 2: rich coded customers without orders.
    let b = PlanBuilder::new();
    let rich = filter(coded_customers(&b), Expr::col("c_acctbal").gt(Expr::lit(avg_bal)));
    let orders = b.scan("orders", &["o_custkey"], vec![]);
    let no_orders = join_full(
        rich,
        orders,
        &[("c_custkey", "o_custkey")],
        JoinType::Anti,
        Some(("FK_O_C", FkSide::Right)),
        None,
    );
    let agg = aggregate(
        no_orders,
        &["cntrycode"],
        vec![
            AggSpec::new(AggFunc::Count, Expr::lit(1), "numcust"),
            AggSpec::new(AggFunc::Sum, Expr::col("c_acctbal"), "totacctbal"),
        ],
    );
    let plan = sort(agg, vec![SortKey::asc("cntrycode")], None);
    ctx.run(&plan)
}
