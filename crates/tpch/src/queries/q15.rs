//! Q15 — top supplier: the revenue view is aggregated once for the MAX
//! scalar, then re-aggregated and filtered to equality (ties included, as
//! the spec demands).

use bdcc_exec::{
    aggregate, filter, join, project, sort, AggFunc, AggSpec, Batch, ColPredicate, Expr, Node,
    PlanBuilder, Result, SortKey,
};

use super::{date, revenue_expr, QueryCtx};

fn revenue_view(b: &PlanBuilder) -> Node {
    let lineitem = b.scan(
        "lineitem",
        &["l_suppkey", "l_extendedprice", "l_discount"],
        vec![ColPredicate::range("l_shipdate", date("1996-01-01"), date("1996-04-01"))],
    );
    aggregate(
        lineitem,
        &["l_suppkey"],
        vec![AggSpec::new(AggFunc::Sum, revenue_expr(), "total_revenue")],
    )
}

pub fn run(ctx: &QueryCtx) -> Result<Batch> {
    // Phase 1: the maximum view revenue.
    let b = PlanBuilder::new();
    let max_plan = aggregate(
        revenue_view(&b),
        &[],
        vec![AggSpec::new(AggFunc::Max, Expr::col("total_revenue"), "max_rev")],
    );
    let max_rev = ctx.scalar_f64(&max_plan)?;

    // Phase 2: suppliers achieving it (float equality is exact: both sides
    // are computed by the identical accumulation).
    let b = PlanBuilder::new();
    let top = filter(revenue_view(&b), Expr::col("total_revenue").ge(Expr::lit(max_rev)));
    let supplier = b.scan("supplier", &["s_suppkey", "s_name", "s_address", "s_phone"], vec![]);
    let joined = join(supplier, top, &[("s_suppkey", "l_suppkey")], None);
    let out = project(
        joined,
        vec![
            (Expr::col("s_suppkey"), "s_suppkey"),
            (Expr::col("s_name"), "s_name"),
            (Expr::col("s_address"), "s_address"),
            (Expr::col("s_phone"), "s_phone"),
            (Expr::col("total_revenue"), "total_revenue"),
        ],
    );
    let plan = sort(out, vec![SortKey::asc("s_suppkey")], None);
    ctx.run(&plan)
}
