//! Q5 — local supplier volume: the classic star join over ASIA in 1994;
//! the region equi-selection determines a consecutive D_NATION bin range
//! (the paper's compound-key example), which propagates to CUSTOMER,
//! ORDERS, SUPPLIER and LINEITEM.

use bdcc_exec::{
    aggregate, join, sort, AggFunc, AggSpec, Batch, ColPredicate, Datum, FkSide, PlanBuilder,
    Result, SortKey,
};

use super::{date, revenue_expr, QueryCtx};

pub fn run(ctx: &QueryCtx) -> Result<Batch> {
    let b = PlanBuilder::new();
    let region = b.scan(
        "region",
        &["r_regionkey"],
        vec![ColPredicate::eq("r_name", Datum::Str("ASIA".into()))],
    );
    let nation = b.scan("nation", &["n_nationkey", "n_name", "n_regionkey"], vec![]);
    let customer = b.scan("customer", &["c_custkey", "c_nationkey"], vec![]);
    let orders = b.scan(
        "orders",
        &["o_orderkey", "o_custkey"],
        vec![ColPredicate::range("o_orderdate", date("1994-01-01"), date("1995-01-01"))],
    );
    let lineitem =
        b.scan("lineitem", &["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"], vec![]);
    let supplier = b.scan("supplier", &["s_suppkey", "s_nationkey"], vec![]);

    let nr =
        join(nation, region, &[("n_regionkey", "r_regionkey")], Some(("FK_N_R", FkSide::Left)));
    let cn = join(customer, nr, &[("c_nationkey", "n_nationkey")], Some(("FK_C_N", FkSide::Left)));
    let oc = join(orders, cn, &[("o_custkey", "c_custkey")], Some(("FK_O_C", FkSide::Left)));
    let lo = join(lineitem, oc, &[("l_orderkey", "o_orderkey")], Some(("FK_L_O", FkSide::Left)));
    // Local supplier: s_suppkey = l_suppkey AND s_nationkey = c_nationkey.
    let ls =
        join(lo, supplier, &[("l_suppkey", "s_suppkey"), ("c_nationkey", "s_nationkey")], None);
    let agg =
        aggregate(ls, &["n_name"], vec![AggSpec::new(AggFunc::Sum, revenue_expr(), "revenue")]);
    let plan = sort(agg, vec![SortKey::desc("revenue")], None);
    ctx.run(&plan)
}
