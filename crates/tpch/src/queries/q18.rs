//! Q18 — large volume customers: orders whose lineitems total > 250 units
//! (the spec uses 300; with at most 7 lineitems of ≤ 50 units that
//! selects almost nothing below SF 1, so the reproduction lowers the
//! threshold to keep the query non-trivial — documented in
//! EXPERIMENTS.md).
//! The LINEITEM aggregation by l_orderkey is the case the paper calls out:
//! sandwiching beats Plain, but the PK scheme's streaming aggregate over
//! the orderkey-sorted table "cannot be beaten".

use bdcc_exec::{
    aggregate, filter, join, sort, AggFunc, AggSpec, Batch, Expr, FkSide, PlanBuilder, Result,
    SortKey,
};

use super::QueryCtx;

pub fn run(ctx: &QueryCtx) -> Result<Batch> {
    let b = PlanBuilder::new();
    // Orders with sum(l_quantity) > 300.
    let li_sum = aggregate(
        b.scan("lineitem", &["l_orderkey", "l_quantity"], vec![]),
        &["l_orderkey"],
        vec![AggSpec::new(AggFunc::Sum, Expr::col("l_quantity"), "sum_qty")],
    );
    let big = filter(li_sum, Expr::col("sum_qty").gt(Expr::lit(250.0)));
    let orders =
        b.scan("orders", &["o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"], vec![]);
    let customer = b.scan("customer", &["c_custkey", "c_name"], vec![]);
    let ob = join(orders, big, &[("o_orderkey", "l_orderkey")], None);
    let oc = join(ob, customer, &[("o_custkey", "c_custkey")], Some(("FK_O_C", FkSide::Left)));
    let agg = aggregate(
        oc,
        &["c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice"],
        vec![AggSpec::new(AggFunc::Max, Expr::col("sum_qty"), "total_qty")],
    );
    let plan =
        sort(agg, vec![SortKey::desc("o_totalprice"), SortKey::asc("o_orderdate")], Some(100));
    ctx.run(&plan)
}
