//! Q7 — volume shipping between FRANCE and GERMANY: a self-referencing
//! nation pair resolved via aliased NATION scans and a residual pair
//! condition.

use bdcc_exec::{
    aggregate, join, join_full, sort, AggFunc, AggSpec, Batch, ColPredicate, Datum, Expr, FkSide,
    JoinType, PlanBuilder, Result, SortKey,
};

use super::{date, revenue_expr, QueryCtx};

pub fn run(ctx: &QueryCtx) -> Result<Batch> {
    let b = PlanBuilder::new();
    let in_pair = vec![Datum::Str("FRANCE".into()), Datum::Str("GERMANY".into())];
    let n1 = b.scan_as(
        "nation",
        "n1",
        &["n_nationkey", "n_name"],
        vec![ColPredicate::in_list("n_name", in_pair.clone())],
    );
    let n2 = b.scan_as(
        "nation",
        "n2",
        &["n_nationkey", "n_name"],
        vec![ColPredicate::in_list("n_name", in_pair)],
    );
    let supplier = b.scan("supplier", &["s_suppkey", "s_nationkey"], vec![]);
    let customer = b.scan("customer", &["c_custkey", "c_nationkey"], vec![]);
    let orders = b.scan("orders", &["o_orderkey", "o_custkey"], vec![]);
    let lineitem = b.scan(
        "lineitem",
        &["l_orderkey", "l_suppkey", "l_shipdate", "l_extendedprice", "l_discount"],
        vec![ColPredicate::between("l_shipdate", date("1995-01-01"), date("1996-12-31"))],
    );

    let sn = join(supplier, n1, &[("s_nationkey", "n1_nationkey")], Some(("FK_S_N", FkSide::Left)));
    let cn = join(customer, n2, &[("c_nationkey", "n2_nationkey")], Some(("FK_C_N", FkSide::Left)));
    let oc = join(orders, cn, &[("o_custkey", "c_custkey")], Some(("FK_O_C", FkSide::Left)));
    let lo = join(lineitem, oc, &[("l_orderkey", "o_orderkey")], Some(("FK_L_O", FkSide::Left)));
    // (supp FRANCE, cust GERMANY) or (supp GERMANY, cust FRANCE).
    let pair_cond = Expr::col("n1_name")
        .eq(Expr::lit("FRANCE"))
        .and(Expr::col("n2_name").eq(Expr::lit("GERMANY")))
        .or(Expr::col("n1_name")
            .eq(Expr::lit("GERMANY"))
            .and(Expr::col("n2_name").eq(Expr::lit("FRANCE"))));
    let ls = join_full(
        lo,
        sn,
        &[("l_suppkey", "s_suppkey")],
        JoinType::Inner,
        Some(("FK_L_S", FkSide::Left)),
        Some(pair_cond),
    );
    let vol = bdcc_exec::project(
        ls,
        vec![
            (Expr::col("n1_name"), "supp_nation"),
            (Expr::col("n2_name"), "cust_nation"),
            (Expr::col("l_shipdate").year(), "l_year"),
            (revenue_expr(), "volume"),
        ],
    );
    let agg = aggregate(
        vol,
        &["supp_nation", "cust_nation", "l_year"],
        vec![AggSpec::new(AggFunc::Sum, Expr::col("volume"), "revenue")],
    );
    let plan = sort(
        agg,
        vec![SortKey::asc("supp_nation"), SortKey::asc("cust_nation"), SortKey::asc("l_year")],
        None,
    );
    ctx.run(&plan)
}
