//! Q13 — customer distribution: orders-per-customer histogram, excluding
//! special-request orders. The ORDERS aggregation by o_custkey sandwiches
//! on the customer D_NATION dimension even though NATION is not in the
//! query — the paper's flagship example of implied co-clustering.

use bdcc_exec::{
    aggregate, join_full, project, sort, AggFunc, AggSpec, Batch, ColPredicate, Expr, FkSide,
    JoinType, LikePattern, PlanBuilder, Result, SortKey, MATCHED_COLUMN,
};

use super::QueryCtx;

pub fn run(ctx: &QueryCtx) -> Result<Batch> {
    let b = PlanBuilder::new();
    // Orders per customer (the aggregation the sandwich accelerates).
    let orders = b.scan(
        "orders",
        &["o_custkey"],
        vec![ColPredicate::not_like(
            "o_comment",
            LikePattern::ContainsSeq("special".into(), "requests".into()),
        )],
    );
    let per_cust = aggregate(
        orders,
        &["o_custkey"],
        vec![AggSpec::new(AggFunc::Count, Expr::lit(1), "o_count")],
    );
    // Left-outer from CUSTOMER so zero-order customers appear with count 0.
    let customer = b.scan("customer", &["c_custkey"], vec![]);
    let joined = join_full(
        customer,
        per_cust,
        &[("c_custkey", "o_custkey")],
        JoinType::LeftOuter,
        Some(("FK_O_C", FkSide::Right)),
        None,
    );
    let counts = project(
        joined,
        vec![(
            Expr::if_else(
                Expr::col(MATCHED_COLUMN).eq(Expr::lit(1)),
                Expr::col("o_count"),
                Expr::lit(0),
            ),
            "c_count",
        )],
    );
    let dist = aggregate(
        counts,
        &["c_count"],
        vec![AggSpec::new(AggFunc::Count, Expr::lit(1), "custdist")],
    );
    let plan = sort(dist, vec![SortKey::desc("custdist"), SortKey::desc("c_count")], None);
    ctx.run(&plan)
}
