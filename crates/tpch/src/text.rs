//! Text generation: names, types, comments, phones.
//!
//! Word lists follow the TPC-H specification closely enough that every
//! string predicate in the 22 queries selects a realistic fraction:
//! `p_type like '%BRASS'`, `p_name like '%green%'`,
//! `o_comment not like '%special%requests%'`,
//! `s_comment like '%Customer%Complaints%'`, containers, brands, segments,
//! ship modes, priorities, and Q22's phone country codes.

use rand::rngs::StdRng;
use rand::Rng;

pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// The 25 TPC-H nations with their region keys.
pub const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("ROMANIA", 3),
    ("RUSSIA", 3),
    ("SAUDI ARABIA", 4),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
    ("VIETNAM", 2),
    ("CHINA", 2),
];

pub const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];

pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

pub const SHIP_INSTRUCTIONS: [&str; 4] =
    ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"];

pub const TYPE_SYLLABLE_1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
pub const TYPE_SYLLABLE_2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
pub const TYPE_SYLLABLE_3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

pub const CONTAINER_SYLLABLE_1: [&str; 5] = ["SM", "LG", "MED", "JUMBO", "WRAP"];
pub const CONTAINER_SYLLABLE_2: [&str; 8] =
    ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

/// Colors used in part names (`p_name like '%green%'` — Q9/Q20).
pub const COLORS: [&str; 20] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "green",
    "red",
    "rose",
    "salmon",
    "white",
    "yellow",
];

/// Comment vocabulary. Includes the tokens the queries grep for:
/// `special`/`requests` (Q13) and `Customer`/`Complaints` (Q16).
pub const COMMENT_WORDS: [&str; 32] = [
    "carefully",
    "quickly",
    "furiously",
    "slyly",
    "blithely",
    "express",
    "special",
    "regular",
    "ironic",
    "pending",
    "final",
    "bold",
    "unusual",
    "requests",
    "deposits",
    "packages",
    "theodolites",
    "accounts",
    "instructions",
    "foxes",
    "pinto",
    "beans",
    "dependencies",
    "ideas",
    "platelets",
    "sleep",
    "haggle",
    "nag",
    "wake",
    "Customer",
    "Complaints",
    "excuses",
];

/// A comment of `min..=max` words.
pub fn comment(rng: &mut StdRng, min: usize, max: usize) -> String {
    let n = rng.random_range(min..=max);
    let mut out = String::new();
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(COMMENT_WORDS[rng.random_range(0..COMMENT_WORDS.len())]);
    }
    out
}

/// A part name: five colors joined by spaces.
pub fn part_name(rng: &mut StdRng) -> String {
    let mut out = String::new();
    for i in 0..5 {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(COLORS[rng.random_range(0..COLORS.len())]);
    }
    out
}

/// `Brand#MN` with M, N ∈ 1..=5.
pub fn brand(rng: &mut StdRng) -> (i64, String) {
    let m = rng.random_range(1..=5);
    let n = rng.random_range(1..=5);
    (m, format!("Brand#{m}{n}"))
}

/// A part type: three syllables.
pub fn part_type(rng: &mut StdRng) -> String {
    format!(
        "{} {} {}",
        TYPE_SYLLABLE_1[rng.random_range(0..6usize)],
        TYPE_SYLLABLE_2[rng.random_range(0..5usize)],
        TYPE_SYLLABLE_3[rng.random_range(0..5usize)]
    )
}

/// A container: two syllables.
pub fn container(rng: &mut StdRng) -> String {
    format!(
        "{} {}",
        CONTAINER_SYLLABLE_1[rng.random_range(0..5usize)],
        CONTAINER_SYLLABLE_2[rng.random_range(0..8usize)]
    )
}

/// Phone in the spec's format: country code `10 + nationkey`, then three
/// random groups — Q22 extracts the two-digit country code prefix.
pub fn phone(rng: &mut StdRng, nationkey: i64) -> String {
    format!(
        "{}-{:03}-{:03}-{:04}",
        10 + nationkey,
        rng.random_range(100..1000),
        rng.random_range(100..1000),
        rng.random_range(1000..10000)
    )
}

/// A random address-ish token string.
pub fn address(rng: &mut StdRng) -> String {
    let len = rng.random_range(8..24);
    (0..len)
        .map(|_| {
            let c = rng.random_range(0..36u8);
            if c < 10 {
                (b'0' + c) as char
            } else {
                (b'a' + c - 10) as char
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn nations_and_regions_are_spec_complete() {
        assert_eq!(NATIONS.len(), 25);
        assert_eq!(REGIONS.len(), 5);
        for (_, r) in NATIONS {
            assert!((0..5).contains(&r));
        }
        // Every region hosts at least one nation.
        for r in 0..5 {
            assert!(NATIONS.iter().any(|&(_, reg)| reg == r));
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(comment(&mut a, 3, 8), comment(&mut b, 3, 8));
        assert_eq!(part_type(&mut a), part_type(&mut b));
        assert_eq!(phone(&mut a, 3), phone(&mut b, 3));
    }

    #[test]
    fn phone_country_code_matches_nation() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = phone(&mut rng, 13);
        assert!(p.starts_with("23-"));
        assert_eq!(p.len(), "23-123-456-7890".len());
    }

    #[test]
    fn brand_is_well_formed() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let (m, b) = brand(&mut rng);
            assert!(b.starts_with("Brand#"));
            assert!((1..=5).contains(&m));
            assert_eq!(b.len(), 8);
        }
    }

    #[test]
    fn comment_tokens_eventually_cover_query_patterns() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut special_requests = false;
        for _ in 0..5000 {
            let c = comment(&mut rng, 4, 10);
            if let Some(i) = c.find("special") {
                if c[i..].contains("requests") {
                    special_requests = true;
                }
            }
        }
        assert!(special_requests, "Q13 pattern never generated");
    }
}
