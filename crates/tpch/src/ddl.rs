//! The TPC-H schema as classic DDL, plus the paper's BDCC hints.
//!
//! Section IV: "We used Algorithm 2 to semi-automatically design the
//! physical BDCC schema given as input DDL statements consisting of the
//! usual foreign keys for TPC-H, plus
//! `CREATE INDEX date_idx ON ORDERS(o_orderdate)`,
//! `CREATE INDEX part_idx ON PART(p_partkey)`,
//! `CREATE INDEX nation_idx ON NATION(n_regionkey, n_nationkey)`.
//! In addition we declared indices on the foreign key references
//! o_custkey, s_nationkey, c_nationkey, l_orderkey, l_partkey, l_suppkey,
//! ps_partkey and ps_suppkey."
//!
//! The order of the LINEITEM foreign-key hints below (`l_orderkey`,
//! `l_suppkey`, `l_partkey`) fixes the round-robin priority so that the
//! derived masks match the dimension-use table printed in the paper
//! (D_DATE, customer D_NATION, supplier D_NATION, D_PART).

use bdcc_catalog::{Catalog, ColumnDef, TableDef};
use bdcc_storage::DataType;

fn col(name: &str, dt: DataType) -> ColumnDef {
    ColumnDef { name: name.to_string(), data_type: dt }
}

/// Build the full TPC-H catalog: 8 tables, primary keys, the usual foreign
/// keys, and the paper's index hints.
pub fn tpch_catalog() -> Catalog {
    use DataType::{Date, Float, Int, Str};
    let mut c = Catalog::new();

    c.create_table(TableDef {
        name: "region".into(),
        columns: vec![col("r_regionkey", Int), col("r_name", Str), col("r_comment", Str)],
        primary_key: vec!["r_regionkey".into()],
    })
    .expect("region");

    c.create_table(TableDef {
        name: "nation".into(),
        columns: vec![
            col("n_nationkey", Int),
            col("n_name", Str),
            col("n_regionkey", Int),
            col("n_comment", Str),
        ],
        primary_key: vec!["n_nationkey".into()],
    })
    .expect("nation");

    c.create_table(TableDef {
        name: "supplier".into(),
        columns: vec![
            col("s_suppkey", Int),
            col("s_name", Str),
            col("s_address", Str),
            col("s_nationkey", Int),
            col("s_phone", Str),
            col("s_acctbal", Float),
            col("s_comment", Str),
        ],
        primary_key: vec!["s_suppkey".into()],
    })
    .expect("supplier");

    c.create_table(TableDef {
        name: "customer".into(),
        columns: vec![
            col("c_custkey", Int),
            col("c_name", Str),
            col("c_address", Str),
            col("c_nationkey", Int),
            col("c_phone", Str),
            col("c_acctbal", Float),
            col("c_mktsegment", Str),
            col("c_comment", Str),
        ],
        primary_key: vec!["c_custkey".into()],
    })
    .expect("customer");

    c.create_table(TableDef {
        name: "part".into(),
        columns: vec![
            col("p_partkey", Int),
            col("p_name", Str),
            col("p_mfgr", Str),
            col("p_brand", Str),
            col("p_type", Str),
            col("p_size", Int),
            col("p_container", Str),
            col("p_retailprice", Float),
            col("p_comment", Str),
        ],
        primary_key: vec!["p_partkey".into()],
    })
    .expect("part");

    c.create_table(TableDef {
        name: "partsupp".into(),
        columns: vec![
            col("ps_partkey", Int),
            col("ps_suppkey", Int),
            col("ps_availqty", Int),
            col("ps_supplycost", Float),
            col("ps_comment", Str),
        ],
        primary_key: vec!["ps_partkey".into(), "ps_suppkey".into()],
    })
    .expect("partsupp");

    c.create_table(TableDef {
        name: "orders".into(),
        columns: vec![
            col("o_orderkey", Int),
            col("o_custkey", Int),
            col("o_orderstatus", Str),
            col("o_totalprice", Float),
            col("o_orderdate", Date),
            col("o_orderpriority", Str),
            col("o_clerk", Str),
            col("o_shippriority", Int),
            col("o_comment", Str),
        ],
        primary_key: vec!["o_orderkey".into()],
    })
    .expect("orders");

    c.create_table(TableDef {
        name: "lineitem".into(),
        columns: vec![
            col("l_orderkey", Int),
            col("l_partkey", Int),
            col("l_suppkey", Int),
            col("l_linenumber", Int),
            col("l_quantity", Float),
            col("l_extendedprice", Float),
            col("l_discount", Float),
            col("l_tax", Float),
            col("l_returnflag", Str),
            col("l_linestatus", Str),
            col("l_shipdate", Date),
            col("l_commitdate", Date),
            col("l_receiptdate", Date),
            col("l_shipinstruct", Str),
            col("l_shipmode", Str),
            col("l_comment", Str),
        ],
        primary_key: vec!["l_orderkey".into(), "l_linenumber".into()],
    })
    .expect("lineitem");

    // The usual TPC-H foreign keys, named in the paper's FK_X_Y style.
    type FkDecl = (
        &'static str,
        &'static str,
        &'static [&'static str],
        &'static str,
        &'static [&'static str],
    );
    let fks: [FkDecl; 9] = [
        ("FK_N_R", "nation", &["n_regionkey"], "region", &["r_regionkey"]),
        ("FK_S_N", "supplier", &["s_nationkey"], "nation", &["n_nationkey"]),
        ("FK_C_N", "customer", &["c_nationkey"], "nation", &["n_nationkey"]),
        ("FK_PS_P", "partsupp", &["ps_partkey"], "part", &["p_partkey"]),
        ("FK_PS_S", "partsupp", &["ps_suppkey"], "supplier", &["s_suppkey"]),
        ("FK_O_C", "orders", &["o_custkey"], "customer", &["c_custkey"]),
        ("FK_L_O", "lineitem", &["l_orderkey"], "orders", &["o_orderkey"]),
        ("FK_L_S", "lineitem", &["l_suppkey"], "supplier", &["s_suppkey"]),
        ("FK_L_P", "lineitem", &["l_partkey"], "part", &["p_partkey"]),
    ];
    for (name, from, from_cols, to, to_cols) in fks {
        c.create_foreign_key(name, from, from_cols, to, to_cols).expect(name);
    }

    // The paper's three dimension hints...
    c.create_index("nation_idx", "nation", &["n_regionkey", "n_nationkey"]).expect("nation_idx");
    c.create_index("part_idx", "part", &["p_partkey"]).expect("part_idx");
    c.create_index("date_idx", "orders", &["o_orderdate"]).expect("date_idx");
    // ...and the foreign-key indices used to derive co-clustering. Order
    // fixes round-robin priority (see module docs).
    c.create_index("s_nk_idx", "supplier", &["s_nationkey"]).expect("s_nk");
    c.create_index("c_nk_idx", "customer", &["c_nationkey"]).expect("c_nk");
    c.create_index("o_ck_idx", "orders", &["o_custkey"]).expect("o_ck");
    c.create_index("ps_pk_idx", "partsupp", &["ps_partkey"]).expect("ps_pk");
    c.create_index("ps_sk_idx", "partsupp", &["ps_suppkey"]).expect("ps_sk");
    c.create_index("l_ok_idx", "lineitem", &["l_orderkey"]).expect("l_ok");
    c.create_index("l_sk_idx", "lineitem", &["l_suppkey"]).expect("l_sk");
    c.create_index("l_pk_idx", "lineitem", &["l_partkey"]).expect("l_pk");
    c
}

/// Paper-scale (SF100) distinct-value statistics for the design preview:
/// 25 nations, 20M parts (capped at 13 bits), 2406 order dates.
pub fn sf100_ndv() -> std::collections::BTreeMap<String, usize> {
    let mut m = std::collections::BTreeMap::new();
    m.insert("D_NATION".to_string(), 25);
    m.insert("D_PART".to_string(), 20_000_000);
    m.insert("D_DATE".to_string(), 2406);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdcc_catalog::SchemaGraph;

    #[test]
    fn catalog_has_eight_tables_nine_fks_eleven_hints() {
        let c = tpch_catalog();
        assert_eq!(c.table_count(), 8);
        assert_eq!(c.fks().len(), 9);
        assert_eq!(c.hints().len(), 11);
    }

    #[test]
    fn schema_dag_is_acyclic_with_expected_leaves() {
        let c = tpch_catalog();
        let g = SchemaGraph::build(&c);
        let order = g.leaf_first_order().unwrap();
        assert_eq!(order.len(), 8);
        let mut leaves: Vec<&str> = g.leaves().into_iter().map(|t| c.table_name(t)).collect();
        leaves.sort();
        assert_eq!(leaves, vec!["part", "region"]);
    }

    #[test]
    fn derived_design_matches_paper() {
        use bdcc_core::{derive_design, DesignConfig};
        let c = tpch_catalog();
        let d = derive_design(&c, &DesignConfig::default()).unwrap();
        // Three dimensions with the paper's names.
        let mut names: Vec<&str> = d.dim_specs.iter().map(|s| s.name.as_str()).collect();
        names.sort();
        assert_eq!(names, vec!["D_DATE", "D_NATION", "D_PART"]);
        // Use counts per table (paper's dimension-use table).
        let uses = |t: &str| d.uses.get(&c.table_id(t).unwrap()).map(|u| u.len()).unwrap_or(0);
        assert_eq!(uses("nation"), 1);
        assert_eq!(uses("supplier"), 1);
        assert_eq!(uses("customer"), 1);
        assert_eq!(uses("part"), 1);
        assert_eq!(uses("partsupp"), 2);
        assert_eq!(uses("orders"), 2);
        assert_eq!(uses("lineitem"), 4);
        assert_eq!(uses("region"), 0);
        // LINEITEM clustered twice on D_NATION over distinct paths.
        let li = &d.uses[&c.table_id("lineitem").unwrap()];
        let nation_id = d.dim_specs.iter().find(|s| s.name == "D_NATION").unwrap().id;
        let nation_uses: Vec<_> = li.iter().filter(|u| u.dim == nation_id).collect();
        assert_eq!(nation_uses.len(), 2);
        assert_ne!(nation_uses[0].path, nation_uses[1].path);
    }

    #[test]
    fn sf100_preview_reproduces_paper_masks() {
        use bdcc_core::{preview_design, DesignConfig};
        let c = tpch_catalog();
        let (dims, tables) = preview_design(&c, &sf100_ndv(), &DesignConfig::default()).unwrap();
        let bits = |n: &str| dims.iter().find(|d| d.name == n).unwrap().bits;
        assert_eq!(bits("D_NATION"), 5);
        assert_eq!(bits("D_PART"), 13);
        assert_eq!(bits("D_DATE"), 12); // the paper rounds this to 13
        let t = |n: &str| tables.iter().find(|t| t.table == n).unwrap();
        // NATION / SUPPLIER / CUSTOMER: all five bits.
        assert_eq!(t("nation").uses[0].mask, "11111");
        assert_eq!(t("supplier").uses[0].mask, "11111");
        assert_eq!(t("customer").uses[0].mask, "11111");
        assert_eq!(t("part").uses[0].mask, "1111111111111");
        // PARTSUPP: D_PART and supplier D_NATION round-robin, part fills.
        assert_eq!(t("partsupp").uses[0].dim_name, "D_PART");
        assert_eq!(t("partsupp").uses[0].mask, "101010101011111111");
        assert_eq!(t("partsupp").uses[1].path, "FK_PS_S.FK_S_N");
        // ORDERS: local D_DATE + customer D_NATION (12-bit date here).
        assert_eq!(t("orders").uses[0].dim_name, "D_DATE");
        assert_eq!(t("orders").uses[1].path, "FK_O_C.FK_C_N");
        // LINEITEM: 4 uses in the paper's order.
        let li = t("lineitem");
        assert_eq!(li.uses.len(), 4);
        assert_eq!(li.uses[0].dim_name, "D_DATE");
        assert_eq!(li.uses[1].path, "FK_L_O.FK_O_C.FK_C_N");
        assert_eq!(li.uses[2].path, "FK_L_S.FK_S_N");
        assert_eq!(li.uses[3].dim_name, "D_PART");
        // With a 12-bit date the total is 35 bits; the top of the D_DATE
        // mask shows the same 4-way round-robin pattern as the paper.
        assert!(li.uses[0].mask.starts_with("10001000100010001000"));
    }
}
