//! # bdcc-tpch — TPC-H substrate for the BDCC evaluation
//!
//! The paper evaluates BDCC on 100 GB TPC-H inside Vectorwise. This crate
//! provides the laptop-scale equivalent, built from scratch:
//!
//! * [`ddl`] — the TPC-H schema as classic DDL (tables, primary keys,
//!   foreign keys) plus the exact index hints of Section IV
//!   (`date_idx`, `part_idx`, `nation_idx` and the foreign-key indices),
//!   which is all Algorithm 2 needs.
//! * [`gen`] — a deterministic `dbgen` clone: correct table cardinalities
//!   per scale factor, the spec's part–supplier assignment formula, the
//!   `o_orderdate`/`l_shipdate` correlation the paper's MinMax analysis
//!   relies on, customers without orders (Q13/Q22), phone country codes
//!   (Q22), and comment text with the Q13/Q16 token patterns.
//! * [`queries`] — all 22 TPC-H queries hand-lowered to the logical plan
//!   algebra of `bdcc-exec`, with the standard validation parameters.

pub mod ddl;
pub mod gen;
pub mod queries;
pub mod text;

pub use ddl::tpch_catalog;
pub use gen::{generate, GenConfig};
pub use queries::{all_queries, Query, QueryCtx};
