//! Deterministic TPC-H data generator (a `dbgen` clone).
//!
//! Cardinalities, key ranges, the part–supplier assignment formula, date
//! correlations and value distributions follow the TPC-H specification, so
//! every query predicate selects a realistic fraction of the data and the
//! paper's effects (notably the `o_orderdate` ↔ `l_shipdate` correlation
//! that powers MinMax pushdown on BDCC-clustered LINEITEM) are present.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

use bdcc_catalog::Database;
use bdcc_storage::{date_to_days, ColumnBuilder, DataType, StoredTable};

use crate::ddl::tpch_catalog;
use crate::text;

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// TPC-H scale factor; SF 1 ≈ 6M lineitems. The paper used SF 100; the
    /// laptop-scale default for experiments here is 0.01–0.1.
    pub scale_factor: f64,
    /// RNG seed; same seed + SF → identical database.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { scale_factor: 0.01, seed: 19_920_101 }
    }
}

impl GenConfig {
    pub fn new(scale_factor: f64) -> GenConfig {
        GenConfig { scale_factor, ..Default::default() }
    }

    pub fn suppliers(&self) -> usize {
        ((10_000.0 * self.scale_factor) as usize).max(10)
    }
    pub fn parts(&self) -> usize {
        ((200_000.0 * self.scale_factor) as usize).max(200)
    }
    pub fn customers(&self) -> usize {
        ((150_000.0 * self.scale_factor) as usize).max(150)
    }
    pub fn orders(&self) -> usize {
        self.customers() * 10
    }
}

/// The spec's supplier-of-part formula: the `i`-th (0..4) supplier of part
/// `p` among `s` suppliers.
pub fn supplier_of_part(p: i64, i: i64, s: i64) -> i64 {
    (p + i * (s / 4 + (p - 1) / s)) % s + 1
}

/// Generate the full database: TPC-H catalog plus all 8 stored tables.
pub fn generate(cfg: &GenConfig) -> Database {
    let catalog = tpch_catalog();
    let mut db = Database::new(catalog);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    attach(&mut db, gen_region(&mut rng));
    attach(&mut db, gen_nation(&mut rng));
    attach(&mut db, gen_supplier(cfg, &mut rng));
    attach(&mut db, gen_customer(cfg, &mut rng));
    let retail_prices = attach(&mut db, gen_part(cfg, &mut rng));
    attach(&mut db, gen_partsupp(cfg, &mut rng));
    let (orders, lineitem) = gen_orders_lineitem(cfg, &mut rng, &retail_prices);
    attach2(&mut db, orders);
    attach2(&mut db, lineitem);
    db
}

fn attach(db: &mut Database, t: (StoredTable, Vec<f64>)) -> Vec<f64> {
    let (table, aux) = t;
    let id = db.catalog().table_id(table.name()).expect("table declared");
    db.attach(id, Arc::new(table));
    aux
}

fn attach2(db: &mut Database, table: StoredTable) {
    let id = db.catalog().table_id(table.name()).expect("table declared");
    db.attach(id, Arc::new(table));
}

fn gen_region(rng: &mut StdRng) -> (StoredTable, Vec<f64>) {
    let n = text::REGIONS.len();
    let mut key = ColumnBuilder::with_capacity(DataType::Int, n);
    let mut name = ColumnBuilder::with_capacity(DataType::Str, n);
    let mut comment = ColumnBuilder::with_capacity(DataType::Str, n);
    for (i, r) in text::REGIONS.iter().enumerate() {
        key.push_i64(i as i64);
        name.push_str(r.to_string());
        comment.push_str(text::comment(rng, 3, 10));
    }
    let t = StoredTable::from_columns(
        "region",
        vec![
            ("r_regionkey".into(), key.finish()),
            ("r_name".into(), name.finish()),
            ("r_comment".into(), comment.finish()),
        ],
    )
    .expect("region columns");
    (t, Vec::new())
}

fn gen_nation(rng: &mut StdRng) -> (StoredTable, Vec<f64>) {
    let n = text::NATIONS.len();
    let mut key = ColumnBuilder::with_capacity(DataType::Int, n);
    let mut name = ColumnBuilder::with_capacity(DataType::Str, n);
    let mut region = ColumnBuilder::with_capacity(DataType::Int, n);
    let mut comment = ColumnBuilder::with_capacity(DataType::Str, n);
    for (i, (nm, r)) in text::NATIONS.iter().enumerate() {
        key.push_i64(i as i64);
        name.push_str(nm.to_string());
        region.push_i64(*r);
        comment.push_str(text::comment(rng, 3, 10));
    }
    let t = StoredTable::from_columns(
        "nation",
        vec![
            ("n_nationkey".into(), key.finish()),
            ("n_name".into(), name.finish()),
            ("n_regionkey".into(), region.finish()),
            ("n_comment".into(), comment.finish()),
        ],
    )
    .expect("nation columns");
    (t, Vec::new())
}

fn gen_supplier(cfg: &GenConfig, rng: &mut StdRng) -> (StoredTable, Vec<f64>) {
    let n = cfg.suppliers();
    let mut key = ColumnBuilder::with_capacity(DataType::Int, n);
    let mut name = ColumnBuilder::with_capacity(DataType::Str, n);
    let mut addr = ColumnBuilder::with_capacity(DataType::Str, n);
    let mut nation = ColumnBuilder::with_capacity(DataType::Int, n);
    let mut phone = ColumnBuilder::with_capacity(DataType::Str, n);
    let mut acctbal = ColumnBuilder::with_capacity(DataType::Float, n);
    let mut comment = ColumnBuilder::with_capacity(DataType::Str, n);
    for i in 1..=n as i64 {
        let nk = rng.random_range(0..25);
        key.push_i64(i);
        name.push_str(format!("Supplier#{i:09}"));
        addr.push_str(text::address(rng));
        nation.push_i64(nk);
        phone.push_str(text::phone(rng, nk));
        acctbal.push_f64((rng.random_range(-99_999..=999_999) as f64) / 100.0);
        comment.push_str(text::comment(rng, 5, 12));
    }
    let t = StoredTable::from_columns(
        "supplier",
        vec![
            ("s_suppkey".into(), key.finish()),
            ("s_name".into(), name.finish()),
            ("s_address".into(), addr.finish()),
            ("s_nationkey".into(), nation.finish()),
            ("s_phone".into(), phone.finish()),
            ("s_acctbal".into(), acctbal.finish()),
            ("s_comment".into(), comment.finish()),
        ],
    )
    .expect("supplier columns");
    (t, Vec::new())
}

fn gen_customer(cfg: &GenConfig, rng: &mut StdRng) -> (StoredTable, Vec<f64>) {
    let n = cfg.customers();
    let mut key = ColumnBuilder::with_capacity(DataType::Int, n);
    let mut name = ColumnBuilder::with_capacity(DataType::Str, n);
    let mut addr = ColumnBuilder::with_capacity(DataType::Str, n);
    let mut nation = ColumnBuilder::with_capacity(DataType::Int, n);
    let mut phone = ColumnBuilder::with_capacity(DataType::Str, n);
    let mut acctbal = ColumnBuilder::with_capacity(DataType::Float, n);
    let mut segment = ColumnBuilder::with_capacity(DataType::Str, n);
    let mut comment = ColumnBuilder::with_capacity(DataType::Str, n);
    for i in 1..=n as i64 {
        let nk = rng.random_range(0..25);
        key.push_i64(i);
        name.push_str(format!("Customer#{i:09}"));
        addr.push_str(text::address(rng));
        nation.push_i64(nk);
        phone.push_str(text::phone(rng, nk));
        acctbal.push_f64((rng.random_range(-99_999..=999_999) as f64) / 100.0);
        segment.push_str(text::SEGMENTS[rng.random_range(0..5usize)].to_string());
        comment.push_str(text::comment(rng, 6, 16));
    }
    let t = StoredTable::from_columns(
        "customer",
        vec![
            ("c_custkey".into(), key.finish()),
            ("c_name".into(), name.finish()),
            ("c_address".into(), addr.finish()),
            ("c_nationkey".into(), nation.finish()),
            ("c_phone".into(), phone.finish()),
            ("c_acctbal".into(), acctbal.finish()),
            ("c_mktsegment".into(), segment.finish()),
            ("c_comment".into(), comment.finish()),
        ],
    )
    .expect("customer columns");
    (t, Vec::new())
}

/// The spec's retail price of part `pk`.
pub fn retail_price(pk: i64) -> f64 {
    (90_000 + (pk / 10) % 20_001 + 100 * (pk % 1_000)) as f64 / 100.0
}

fn gen_part(cfg: &GenConfig, rng: &mut StdRng) -> (StoredTable, Vec<f64>) {
    let n = cfg.parts();
    let mut key = ColumnBuilder::with_capacity(DataType::Int, n);
    let mut name = ColumnBuilder::with_capacity(DataType::Str, n);
    let mut mfgr = ColumnBuilder::with_capacity(DataType::Str, n);
    let mut brandc = ColumnBuilder::with_capacity(DataType::Str, n);
    let mut typec = ColumnBuilder::with_capacity(DataType::Str, n);
    let mut size = ColumnBuilder::with_capacity(DataType::Int, n);
    let mut container = ColumnBuilder::with_capacity(DataType::Str, n);
    let mut price = ColumnBuilder::with_capacity(DataType::Float, n);
    let mut comment = ColumnBuilder::with_capacity(DataType::Str, n);
    let mut prices = Vec::with_capacity(n + 1);
    prices.push(0.0); // partkeys are 1-based
    for i in 1..=n as i64 {
        let (m, b) = text::brand(rng);
        key.push_i64(i);
        name.push_str(text::part_name(rng));
        mfgr.push_str(format!("Manufacturer#{m}"));
        brandc.push_str(b);
        typec.push_str(text::part_type(rng));
        size.push_i64(rng.random_range(1..=50));
        container.push_str(text::container(rng));
        let p = retail_price(i);
        price.push_f64(p);
        prices.push(p);
        comment.push_str(text::comment(rng, 3, 8));
    }
    let t = StoredTable::from_columns(
        "part",
        vec![
            ("p_partkey".into(), key.finish()),
            ("p_name".into(), name.finish()),
            ("p_mfgr".into(), mfgr.finish()),
            ("p_brand".into(), brandc.finish()),
            ("p_type".into(), typec.finish()),
            ("p_size".into(), size.finish()),
            ("p_container".into(), container.finish()),
            ("p_retailprice".into(), price.finish()),
            ("p_comment".into(), comment.finish()),
        ],
    )
    .expect("part columns");
    (t, prices)
}

fn gen_partsupp(cfg: &GenConfig, rng: &mut StdRng) -> (StoredTable, Vec<f64>) {
    let parts = cfg.parts() as i64;
    let suppliers = cfg.suppliers() as i64;
    let n = (parts * 4) as usize;
    let mut pk = ColumnBuilder::with_capacity(DataType::Int, n);
    let mut sk = ColumnBuilder::with_capacity(DataType::Int, n);
    let mut qty = ColumnBuilder::with_capacity(DataType::Int, n);
    let mut cost = ColumnBuilder::with_capacity(DataType::Float, n);
    let mut comment = ColumnBuilder::with_capacity(DataType::Str, n);
    for p in 1..=parts {
        for i in 0..4 {
            pk.push_i64(p);
            sk.push_i64(supplier_of_part(p, i, suppliers));
            qty.push_i64(rng.random_range(1..=9_999));
            cost.push_f64((rng.random_range(100..=100_000) as f64) / 100.0);
            comment.push_str(text::comment(rng, 4, 10));
        }
    }
    let t = StoredTable::from_columns(
        "partsupp",
        vec![
            ("ps_partkey".into(), pk.finish()),
            ("ps_suppkey".into(), sk.finish()),
            ("ps_availqty".into(), qty.finish()),
            ("ps_supplycost".into(), cost.finish()),
            ("ps_comment".into(), comment.finish()),
        ],
    )
    .expect("partsupp columns");
    (t, Vec::new())
}

/// The TPC-H currentdate constant: 1995-06-17 splits shipped from open.
pub fn current_date() -> i64 {
    date_to_days(1995, 6, 17)
}

#[allow(clippy::too_many_lines)]
fn gen_orders_lineitem(
    cfg: &GenConfig,
    rng: &mut StdRng,
    retail_prices: &[f64],
) -> (StoredTable, StoredTable) {
    let n_orders = cfg.orders();
    let parts = cfg.parts() as i64;
    let suppliers = cfg.suppliers() as i64;
    let customers = cfg.customers() as i64;
    let start = date_to_days(1992, 1, 1);
    let end = date_to_days(1998, 12, 31) - 151;
    let cutoff = current_date();

    // Orders columns.
    let mut o_key = ColumnBuilder::with_capacity(DataType::Int, n_orders);
    let mut o_cust = ColumnBuilder::with_capacity(DataType::Int, n_orders);
    let mut o_status = ColumnBuilder::with_capacity(DataType::Str, n_orders);
    let mut o_total = ColumnBuilder::with_capacity(DataType::Float, n_orders);
    let mut o_date = ColumnBuilder::with_capacity(DataType::Date, n_orders);
    let mut o_prio = ColumnBuilder::with_capacity(DataType::Str, n_orders);
    let mut o_clerk = ColumnBuilder::with_capacity(DataType::Str, n_orders);
    let mut o_shipprio = ColumnBuilder::with_capacity(DataType::Int, n_orders);
    let mut o_comment = ColumnBuilder::with_capacity(DataType::Str, n_orders);

    // Lineitem columns (≈ 4 per order).
    let cap = n_orders * 4;
    let mut l_ok = ColumnBuilder::with_capacity(DataType::Int, cap);
    let mut l_pk = ColumnBuilder::with_capacity(DataType::Int, cap);
    let mut l_sk = ColumnBuilder::with_capacity(DataType::Int, cap);
    let mut l_ln = ColumnBuilder::with_capacity(DataType::Int, cap);
    let mut l_qty = ColumnBuilder::with_capacity(DataType::Float, cap);
    let mut l_price = ColumnBuilder::with_capacity(DataType::Float, cap);
    let mut l_disc = ColumnBuilder::with_capacity(DataType::Float, cap);
    let mut l_tax = ColumnBuilder::with_capacity(DataType::Float, cap);
    let mut l_rflag = ColumnBuilder::with_capacity(DataType::Str, cap);
    let mut l_status = ColumnBuilder::with_capacity(DataType::Str, cap);
    let mut l_ship = ColumnBuilder::with_capacity(DataType::Date, cap);
    let mut l_commit = ColumnBuilder::with_capacity(DataType::Date, cap);
    let mut l_receipt = ColumnBuilder::with_capacity(DataType::Date, cap);
    let mut l_instruct = ColumnBuilder::with_capacity(DataType::Str, cap);
    let mut l_mode = ColumnBuilder::with_capacity(DataType::Str, cap);
    let mut l_comment = ColumnBuilder::with_capacity(DataType::Str, cap);

    let clerks = (1_000.0 * cfg.scale_factor).max(1.0) as i64;
    for ok in 1..=n_orders as i64 {
        // Customers with custkey % 3 == 0 place no orders (spec), which
        // Q13 and Q22 rely on.
        let ck = loop {
            let c = rng.random_range(1..=customers);
            if c % 3 != 0 {
                break c;
            }
        };
        let odate = rng.random_range(start..=end);
        let nlines = rng.random_range(1..=7);
        let mut total = 0.0;
        let mut all_f = true;
        let mut all_o = true;
        for ln in 1..=nlines {
            let p = rng.random_range(1..=parts);
            let s = supplier_of_part(p, rng.random_range(0..4), suppliers);
            let qty = rng.random_range(1..=50) as f64;
            let eprice = qty * retail_prices[p as usize];
            let disc = rng.random_range(0..=10) as f64 / 100.0;
            let tax = rng.random_range(0..=8) as f64 / 100.0;
            let ship = odate + rng.random_range(1..=121i64);
            let commit = odate + rng.random_range(30..=90i64);
            let receipt = ship + rng.random_range(1..=30i64);
            let status = if ship > cutoff { "O" } else { "F" };
            let rflag = if receipt <= cutoff {
                if rng.random_bool(0.5) {
                    "R"
                } else {
                    "A"
                }
            } else {
                "N"
            };
            all_f &= status == "F";
            all_o &= status == "O";
            total += eprice * (1.0 + tax) * (1.0 - disc);
            l_ok.push_i64(ok);
            l_pk.push_i64(p);
            l_sk.push_i64(s);
            l_ln.push_i64(ln);
            l_qty.push_f64(qty);
            l_price.push_f64(eprice);
            l_disc.push_f64(disc);
            l_tax.push_f64(tax);
            l_rflag.push_str(rflag.to_string());
            l_status.push_str(status.to_string());
            l_ship.push_i64(ship);
            l_commit.push_i64(commit);
            l_receipt.push_i64(receipt);
            l_instruct.push_str(text::SHIP_INSTRUCTIONS[rng.random_range(0..4usize)].to_string());
            l_mode.push_str(text::SHIP_MODES[rng.random_range(0..7usize)].to_string());
            l_comment.push_str(text::comment(rng, 2, 6));
        }
        o_key.push_i64(ok);
        o_cust.push_i64(ck);
        o_status.push_str(
            if all_f {
                "F"
            } else if all_o {
                "O"
            } else {
                "P"
            }
            .to_string(),
        );
        o_total.push_f64(total);
        o_date.push_i64(odate);
        o_prio.push_str(text::PRIORITIES[rng.random_range(0..5usize)].to_string());
        o_clerk.push_str(format!("Clerk#{:09}", rng.random_range(1..=clerks)));
        o_shipprio.push_i64(0);
        o_comment.push_str(text::comment(rng, 6, 18));
    }

    let orders = StoredTable::from_columns(
        "orders",
        vec![
            ("o_orderkey".into(), o_key.finish()),
            ("o_custkey".into(), o_cust.finish()),
            ("o_orderstatus".into(), o_status.finish()),
            ("o_totalprice".into(), o_total.finish()),
            ("o_orderdate".into(), o_date.finish()),
            ("o_orderpriority".into(), o_prio.finish()),
            ("o_clerk".into(), o_clerk.finish()),
            ("o_shippriority".into(), o_shipprio.finish()),
            ("o_comment".into(), o_comment.finish()),
        ],
    )
    .expect("orders columns");
    let lineitem = StoredTable::from_columns(
        "lineitem",
        vec![
            ("l_orderkey".into(), l_ok.finish()),
            ("l_partkey".into(), l_pk.finish()),
            ("l_suppkey".into(), l_sk.finish()),
            ("l_linenumber".into(), l_ln.finish()),
            ("l_quantity".into(), l_qty.finish()),
            ("l_extendedprice".into(), l_price.finish()),
            ("l_discount".into(), l_disc.finish()),
            ("l_tax".into(), l_tax.finish()),
            ("l_returnflag".into(), l_rflag.finish()),
            ("l_linestatus".into(), l_status.finish()),
            ("l_shipdate".into(), l_ship.finish()),
            ("l_commitdate".into(), l_commit.finish()),
            ("l_receiptdate".into(), l_receipt.finish()),
            ("l_shipinstruct".into(), l_instruct.finish()),
            ("l_shipmode".into(), l_mode.finish()),
            ("l_comment".into(), l_comment.finish()),
        ],
    )
    .expect("lineitem columns");
    (orders, lineitem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn tiny() -> Database {
        generate(&GenConfig { scale_factor: 0.002, seed: 42 })
    }

    #[test]
    fn cardinalities_scale() {
        let db = tiny();
        let rows = |t: &str| db.stored_by_name(t).unwrap().rows();
        assert_eq!(rows("region"), 5);
        assert_eq!(rows("nation"), 25);
        assert_eq!(rows("supplier"), 20);
        assert_eq!(rows("part"), 400);
        assert_eq!(rows("partsupp"), 1600);
        assert_eq!(rows("customer"), 300);
        assert_eq!(rows("orders"), 3000);
        let li = rows("lineitem");
        assert!((3000..=21000).contains(&li));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&GenConfig { scale_factor: 0.002, seed: 7 });
        let b = generate(&GenConfig { scale_factor: 0.002, seed: 7 });
        let ta = a.stored_by_name("lineitem").unwrap();
        let tb = b.stored_by_name("lineitem").unwrap();
        assert_eq!(ta.rows(), tb.rows());
        assert_eq!(
            ta.column_by_name("l_partkey").unwrap().as_i64().unwrap(),
            tb.column_by_name("l_partkey").unwrap().as_i64().unwrap()
        );
    }

    #[test]
    fn foreign_keys_are_valid() {
        let db = tiny();
        let check = |from: &str, col: &str, to: &str, tocol: &str| {
            let keys: HashSet<i64> = db
                .stored_by_name(to)
                .unwrap()
                .column_by_name(tocol)
                .unwrap()
                .as_i64()
                .unwrap()
                .iter()
                .copied()
                .collect();
            for v in db.stored_by_name(from).unwrap().column_by_name(col).unwrap().as_i64().unwrap()
            {
                assert!(keys.contains(v), "{from}.{col}={v} missing in {to}.{tocol}");
            }
        };
        check("nation", "n_regionkey", "region", "r_regionkey");
        check("supplier", "s_nationkey", "nation", "n_nationkey");
        check("customer", "c_nationkey", "nation", "n_nationkey");
        check("orders", "o_custkey", "customer", "c_custkey");
        check("lineitem", "l_orderkey", "orders", "o_orderkey");
        check("lineitem", "l_partkey", "part", "p_partkey");
        check("lineitem", "l_suppkey", "supplier", "s_suppkey");
        check("partsupp", "ps_partkey", "part", "p_partkey");
        check("partsupp", "ps_suppkey", "supplier", "s_suppkey");
    }

    #[test]
    fn lineitem_part_supp_pairs_exist_in_partsupp() {
        let db = tiny();
        let ps = db.stored_by_name("partsupp").unwrap();
        let pairs: HashSet<(i64, i64)> = ps
            .column_by_name("ps_partkey")
            .unwrap()
            .as_i64()
            .unwrap()
            .iter()
            .zip(ps.column_by_name("ps_suppkey").unwrap().as_i64().unwrap())
            .map(|(&p, &s)| (p, s))
            .collect();
        let li = db.stored_by_name("lineitem").unwrap();
        let lp = li.column_by_name("l_partkey").unwrap().as_i64().unwrap().to_vec();
        let ls = li.column_by_name("l_suppkey").unwrap().as_i64().unwrap().to_vec();
        for (p, s) in lp.iter().zip(&ls) {
            assert!(pairs.contains(&(*p, *s)));
        }
    }

    #[test]
    fn dates_are_correlated() {
        let db = tiny();
        // Join lineitem to orders manually and verify the spec windows.
        let orders = db.stored_by_name("orders").unwrap();
        let odate: std::collections::HashMap<i64, i64> = orders
            .column_by_name("o_orderkey")
            .unwrap()
            .as_i64()
            .unwrap()
            .iter()
            .zip(orders.column_by_name("o_orderdate").unwrap().as_i64().unwrap())
            .map(|(&k, &d)| (k, d))
            .collect();
        let li = db.stored_by_name("lineitem").unwrap();
        let ok = li.column_by_name("l_orderkey").unwrap().as_i64().unwrap().to_vec();
        let ship = li.column_by_name("l_shipdate").unwrap().as_i64().unwrap().to_vec();
        let receipt = li.column_by_name("l_receiptdate").unwrap().as_i64().unwrap().to_vec();
        for i in 0..ok.len() {
            let od = odate[&ok[i]];
            assert!(ship[i] > od && ship[i] <= od + 121);
            assert!(receipt[i] > ship[i] && receipt[i] <= ship[i] + 30);
        }
    }

    #[test]
    fn a_third_of_customers_have_no_orders() {
        let db = tiny();
        let custs: HashSet<i64> = db
            .stored_by_name("orders")
            .unwrap()
            .column_by_name("o_custkey")
            .unwrap()
            .as_i64()
            .unwrap()
            .iter()
            .copied()
            .collect();
        // No customer with key % 3 == 0 ever appears.
        assert!(custs.iter().all(|c| c % 3 != 0));
    }

    #[test]
    fn status_flags_follow_cutoff() {
        let db = tiny();
        let li = db.stored_by_name("lineitem").unwrap();
        let ship = li.column_by_name("l_shipdate").unwrap().as_i64().unwrap().to_vec();
        let status = li.column_by_name("l_linestatus").unwrap().as_str().unwrap().to_vec();
        let rflag = li.column_by_name("l_returnflag").unwrap().as_str().unwrap().to_vec();
        let receipt = li.column_by_name("l_receiptdate").unwrap().as_i64().unwrap().to_vec();
        let cutoff = current_date();
        for i in 0..ship.len() {
            assert_eq!(status[i] == "O", ship[i] > cutoff);
            assert_eq!(rflag[i] == "N", receipt[i] > cutoff);
        }
    }

    #[test]
    fn supplier_of_part_in_range() {
        for p in 1..100 {
            for i in 0..4 {
                let s = supplier_of_part(p, i, 20);
                assert!((1..=20).contains(&s));
            }
        }
    }
}
