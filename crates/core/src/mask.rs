//! Bitmask algebra for `_bdcc_` keys.
//!
//! A dimension use (Definition 3) owns a subset of the bit positions of the
//! clustering key, described by a bitmask `M`. This module implements:
//!
//! * scatter/gather between a bin number's major bits and its mask positions
//!   (the `_bdcc_` computation of Definition 4 and its inverse, needed by
//!   the scatter-scan),
//! * the bit-assignment strategies of Algorithm 1(i): round-robin per use
//!   (Z-order/UB-tree style, the paper's default — it reproduces every mask
//!   of the Section IV dimension-use table), round-robin per foreign key
//!   (the literal Algorithm 1(i) wording), and major-minor (the hand-tuned
//!   comparison setup of "Other Orderings").
//!
//! Masks are `u64`s whose bit `B-1` is the most significant position of a
//! `B`-bit clustering key; `B ≤ 64` (TPC-H LINEITEM needs 36).

/// Number of set bits in a mask — `ones(M)` in the paper.
pub fn ones(mask: u64) -> u32 {
    mask.count_ones()
}

/// Render the low `width` bits of `mask` as a binary string, exactly like
/// the dimension-use table in Section IV of the paper.
pub fn mask_to_string(mask: u64, width: u32) -> String {
    (0..width).rev().map(|i| if mask >> i & 1 == 1 { '1' } else { '0' }).collect()
}

/// Scatter the *major* `ones(mask)` bits of `bin` (a `bin_bits`-wide bin
/// number) to the set positions of `mask`, most-significant bin bit to
/// most-significant mask position (Definition 4).
pub fn scatter_bits(bin: u64, bin_bits: u32, mask: u64) -> u64 {
    let take = ones(mask).min(bin_bits);
    // The major `take` bits of the bin number.
    let major = if take == 0 { 0 } else { bin >> (bin_bits - take) };
    let mut out = 0u64;
    let mut remaining = take;
    // Walk mask positions from MSB to LSB, consuming major bits MSB-first.
    for pos in (0..64).rev() {
        if mask >> pos & 1 == 1 {
            if remaining == 0 {
                break;
            }
            remaining -= 1;
            if major >> remaining & 1 == 1 {
                out |= 1 << pos;
            }
        }
    }
    out
}

/// Inverse of [`scatter_bits`]: collect the bits of `key` at the set
/// positions of `mask`, MSB-first, into a compact `ones(mask)`-bit value.
pub fn gather_bits(key: u64, mask: u64) -> u64 {
    let mut out = 0u64;
    for pos in (0..64).rev() {
        if mask >> pos & 1 == 1 {
            out = (out << 1) | (key >> pos & 1);
        }
    }
    out
}

/// How Algorithm 1(i) spreads dimension bits over the clustering key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterleaveStrategy {
    /// One bit per *use* per round (Z-order across all uses). This is the
    /// assignment that reproduces the masks printed in the paper's
    /// evaluation (e.g. LINEITEM `10001000100010001000` for D_DATE).
    RoundRobinPerUse,
    /// One bit per *foreign key or local dimension* per round; uses sharing
    /// a foreign key alternate within their key's turns — the literal
    /// Algorithm 1(i) wording ("per foreign key or local dimension").
    RoundRobinPerFk,
    /// All bits of the first use first (major), then the second, ... — the
    /// classic MDAM-style ordering used for the "Other Orderings"
    /// self-comparison. Use order defines priority.
    MajorMinor,
}

/// Input to mask assignment: per use, its dimension's granularity in bits
/// and the group key (uses with equal keys share round-robin turns under
/// [`InterleaveStrategy::RoundRobinPerFk`]; use `None` for "its own group").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseBits {
    pub dim_bits: u32,
    /// Grouping key: `Some(fk_id)` for uses whose path starts with that
    /// foreign key, `None` for local dimensions (each its own group).
    pub fk_group: Option<usize>,
}

/// Assign masks to `uses` under `strategy`. Returns `(masks, total_bits)`
/// where every dimension's full granularity is used
/// (`total_bits = Σ dim_bits`), masks are pairwise disjoint and together
/// cover all `total_bits` positions (Definition 4 constraints).
///
/// # Panics
/// Panics if the combined granularity exceeds 64 bits.
pub fn assign_masks(uses: &[UseBits], strategy: InterleaveStrategy) -> (Vec<u64>, u32) {
    let total_bits: u32 = uses.iter().map(|u| u.dim_bits).sum();
    assert!(total_bits <= 64, "combined granularity {total_bits} exceeds 64 bits");
    let order = assignment_order(uses, strategy);
    let mut masks = vec![0u64; uses.len()];
    for (k, &use_idx) in order.iter().enumerate() {
        let pos = total_bits - 1 - k as u32; // k-th assigned bit, from MSB down
        masks[use_idx] |= 1 << pos;
    }
    (masks, total_bits)
}

/// The sequence of use indices receiving bits, from most significant
/// position downwards.
fn assignment_order(uses: &[UseBits], strategy: InterleaveStrategy) -> Vec<usize> {
    let mut remaining: Vec<u32> = uses.iter().map(|u| u.dim_bits).collect();
    let total: u32 = remaining.iter().sum();
    let mut order = Vec::with_capacity(total as usize);
    match strategy {
        InterleaveStrategy::MajorMinor => {
            for (i, u) in uses.iter().enumerate() {
                for _ in 0..u.dim_bits {
                    order.push(i);
                }
            }
        }
        InterleaveStrategy::RoundRobinPerUse => {
            while order.len() < total as usize {
                for (i, rem) in remaining.iter_mut().enumerate() {
                    if *rem > 0 {
                        *rem -= 1;
                        order.push(i);
                    }
                }
            }
        }
        InterleaveStrategy::RoundRobinPerFk => {
            // Build groups preserving first-appearance order. Local uses
            // (fk_group == None) each form their own group.
            let mut groups: Vec<Vec<usize>> = Vec::new();
            let mut group_of_fk: Vec<(usize, usize)> = Vec::new(); // (fk, group idx)
            for (i, u) in uses.iter().enumerate() {
                match u.fk_group {
                    None => groups.push(vec![i]),
                    Some(fk) => match group_of_fk.iter().find(|(f, _)| *f == fk) {
                        Some(&(_, g)) => groups[g].push(i),
                        None => {
                            group_of_fk.push((fk, groups.len()));
                            groups.push(vec![i]);
                        }
                    },
                }
            }
            // Within each group, rotate over its members on every turn the
            // group receives.
            let mut rotor = vec![0usize; groups.len()];
            while order.len() < total as usize {
                for (g, members) in groups.iter().enumerate() {
                    // Find the next member of this group with bits left.
                    let mut assigned = false;
                    for step in 0..members.len() {
                        let m = members[(rotor[g] + step) % members.len()];
                        if remaining[m] > 0 {
                            remaining[m] -= 1;
                            order.push(m);
                            rotor[g] = (rotor[g] + step + 1) % members.len();
                            assigned = true;
                            break;
                        }
                    }
                    let _ = assigned;
                }
            }
        }
    }
    order
}

/// Restrict a mask of a `total_bits`-wide key to its top `granularity`
/// positions, re-based so bit 0 is the least significant bit of the
/// truncated group key. This is the mask a count table at granularity `b`
/// sees (Definition 1(vii): chopping off the `B−b` least significant bits).
pub fn truncate_mask(mask: u64, total_bits: u32, granularity: u32) -> u64 {
    debug_assert!(granularity <= total_bits);
    mask >> (total_bits - granularity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_gather_round_trip() {
        // 3-bit bin into a 4-bit-spaced mask.
        let mask = 0b100010001000u64;
        let v = scatter_bits(0b101, 3, mask);
        assert_eq!(v, 0b100000001000);
        assert_eq!(gather_bits(v, mask), 0b101);
    }

    #[test]
    fn scatter_takes_major_bits_when_mask_shorter() {
        // 5-bit bin, mask has 2 positions → top 2 bits of the bin.
        let mask = 0b101u64;
        assert_eq!(scatter_bits(0b11010, 5, mask), 0b101);
        assert_eq!(scatter_bits(0b01010, 5, mask), 0b001);
    }

    #[test]
    fn mask_rendering_matches_paper_style() {
        assert_eq!(mask_to_string(0b11111, 5), "11111");
        assert_eq!(mask_to_string(0b1010, 4), "1010");
    }

    /// The paper's ORDERS masks: D_DATE (13 bits, local) and D_NATION
    /// (5 bits over FK_O_C): `101010101011111111` / `010101010100000000`.
    #[test]
    fn orders_masks_match_paper() {
        let uses =
            [UseBits { dim_bits: 13, fk_group: None }, UseBits { dim_bits: 5, fk_group: Some(0) }];
        let (masks, total) = assign_masks(&uses, InterleaveStrategy::RoundRobinPerUse);
        assert_eq!(total, 18);
        assert_eq!(mask_to_string(masks[0], total), "101010101011111111");
        assert_eq!(mask_to_string(masks[1], total), "010101010100000000");
    }

    /// The paper's LINEITEM masks: four uses (D_DATE 13, D_NATION 5,
    /// D_NATION 5, D_PART 13); top 20 bits are shown in the paper.
    #[test]
    fn lineitem_masks_match_paper_prefix() {
        let uses = [
            UseBits { dim_bits: 13, fk_group: Some(0) }, // D_DATE via FK_L_O
            UseBits { dim_bits: 5, fk_group: Some(0) },  // D_NATION via FK_L_O..
            UseBits { dim_bits: 5, fk_group: Some(1) },  // D_NATION via FK_L_S..
            UseBits { dim_bits: 13, fk_group: Some(2) }, // D_PART via FK_L_P
        ];
        let (masks, total) = assign_masks(&uses, InterleaveStrategy::RoundRobinPerUse);
        assert_eq!(total, 36);
        // Truncated to the paper's 20-bit granularity:
        let t: Vec<String> =
            masks.iter().map(|&m| mask_to_string(truncate_mask(m, total, 20), 20)).collect();
        assert_eq!(t[0], "10001000100010001000");
        assert_eq!(t[1], "01000100010001000100");
        assert_eq!(t[2], "00100010001000100010");
        assert_eq!(t[3], "00010001000100010001");
    }

    /// PARTSUPP: D_PART 13 bits + D_NATION 5 bits →
    /// `101010101011111111` per the paper.
    #[test]
    fn partsupp_masks_match_paper() {
        let uses = [
            UseBits { dim_bits: 13, fk_group: Some(0) },
            UseBits { dim_bits: 5, fk_group: Some(1) },
        ];
        let (masks, total) = assign_masks(&uses, InterleaveStrategy::RoundRobinPerUse);
        assert_eq!(mask_to_string(masks[0], total), "101010101011111111");
    }

    #[test]
    fn masks_are_disjoint_and_cover_everything() {
        let uses = [
            UseBits { dim_bits: 3, fk_group: None },
            UseBits { dim_bits: 7, fk_group: Some(4) },
            UseBits { dim_bits: 2, fk_group: Some(4) },
        ];
        for strat in [
            InterleaveStrategy::RoundRobinPerUse,
            InterleaveStrategy::RoundRobinPerFk,
            InterleaveStrategy::MajorMinor,
        ] {
            let (masks, total) = assign_masks(&uses, strat);
            assert_eq!(total, 12);
            let mut union = 0u64;
            for (i, &m) in masks.iter().enumerate() {
                assert_eq!(union & m, 0, "{strat:?} masks overlap");
                union |= m;
                assert_eq!(ones(m), uses[i].dim_bits, "{strat:?} wrong bit count");
            }
            assert_eq!(union, (1u64 << total) - 1, "{strat:?} does not cover");
        }
    }

    #[test]
    fn major_minor_orders_by_priority() {
        let uses =
            [UseBits { dim_bits: 2, fk_group: None }, UseBits { dim_bits: 3, fk_group: None }];
        let (masks, total) = assign_masks(&uses, InterleaveStrategy::MajorMinor);
        assert_eq!(mask_to_string(masks[0], total), "11000");
        assert_eq!(mask_to_string(masks[1], total), "00111");
    }

    #[test]
    fn per_fk_groups_share_turns() {
        // Two uses on fk 0 (2 bits each) and one local (2 bits): groups are
        // {u0,u1} and {u2}; per round: one bit to the fk group (alternating
        // u0/u1) and one to u2.
        let uses = [
            UseBits { dim_bits: 2, fk_group: Some(0) },
            UseBits { dim_bits: 2, fk_group: Some(0) },
            UseBits { dim_bits: 2, fk_group: None },
        ];
        let (masks, total) = assign_masks(&uses, InterleaveStrategy::RoundRobinPerFk);
        assert_eq!(total, 6);
        // Assignment sequence: u0, u2, u1, u2, u0, u1.
        assert_eq!(mask_to_string(masks[0], total), "100010");
        assert_eq!(mask_to_string(masks[1], total), "001001");
        assert_eq!(mask_to_string(masks[2], total), "010100");
    }

    #[test]
    fn truncate_mask_rebases() {
        let m = 0b101010u64; // 6-bit key
        assert_eq!(truncate_mask(m, 6, 3), 0b101);
        assert_eq!(truncate_mask(m, 6, 6), m);
        assert_eq!(truncate_mask(m, 6, 0), 0);
    }

    #[test]
    fn gather_of_zero_mask_is_zero() {
        assert_eq!(gather_bits(u64::MAX, 0), 0);
        assert_eq!(scatter_bits(0b11, 2, 0), 0);
    }
}
