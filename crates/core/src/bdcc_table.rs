//! BDCC tables (Definition 4) and the self-tuned bulk-load (Algorithm 1).
//!
//! `cluster_table` performs the paper's Algorithm 1:
//!
//! 1. assign round-robin masks at *maximal* granularity
//!    `B = Σ bits(D(Ui))`,
//! 2. compute the `_bdcc_` value of every tuple (scatter the major bits of
//!    each bin number to its mask positions) and sort the table on it,
//!    piggy-backing the log2 group-size histograms,
//! 3. find the densest (widest) column and choose the largest granularity
//!    `b ≤ B` whose groups mostly stay above the efficient random access
//!    size `AR`,
//! 4. build the count table at granularity `b`
//!
//! plus, optionally, the small-group consolidation described at the end of
//! Section III.

use std::sync::Arc;

use bdcc_catalog::{Database, FkId, TableId};
use bdcc_storage::{apply_permutation, sort_permutation, Column, StoredTable, PAGE_SIZE};

use crate::count_table::CountTable;
use crate::dimension::{DimId, Dimension, KeyValue};
use crate::error::{BdccError, Result};
use crate::histogram::GranularityHistograms;
use crate::mask::{
    assign_masks, gather_bits, ones, scatter_bits, truncate_mask, InterleaveStrategy, UseBits,
};
use crate::resolve::resolve_host_rows;

/// Name of the synthetic clustering-key column appended to BDCC tables.
pub const BDCC_COLUMN: &str = "_bdcc_";

/// A dimension use `U = ⟨D, P, M⟩` (Definition 3) bound to a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimensionUse {
    pub dim: DimId,
    /// Dimension path: foreign keys from the table to the dimension host.
    pub path: Vec<FkId>,
    /// Bit positions in the full-granularity `_bdcc_` key.
    pub mask: u64,
}

/// Self-tuning parameters for Algorithm 1.
#[derive(Debug, Clone, Copy)]
pub struct SelfTuneConfig {
    /// Efficient random access size `AR` in bytes (32 KB for flash).
    pub ar_bytes: usize,
    /// Minimum fraction of groups whose densest-column byte size must stay
    /// ≥ `AR` ("the vast majority"); granularity is the largest `b`
    /// achieving it.
    pub min_fraction_above_ar: f64,
    /// Bit-assignment strategy (round-robin per use by default).
    pub interleave: InterleaveStrategy,
    /// Hard cap on the count-table granularity (the paper's schema-size
    /// discussion caps realistic setups around 24 bits).
    pub max_granularity: u32,
    /// Run the small-group consolidation after load.
    pub consolidate_small_groups: bool,
}

impl Default for SelfTuneConfig {
    fn default() -> Self {
        SelfTuneConfig {
            ar_bytes: PAGE_SIZE,
            min_fraction_above_ar: 0.5,
            interleave: InterleaveStrategy::RoundRobinPerUse,
            max_granularity: 24,
            consolidate_small_groups: true,
        }
    }
}

/// A clustered table: re-organized storage plus clustering metadata.
#[derive(Debug, Clone)]
pub struct BdccTable {
    pub source: TableId,
    /// Dimension uses with their assigned masks (full granularity).
    pub uses: Vec<DimensionUse>,
    /// Full clustering-key width `B`.
    pub total_bits: u32,
    /// Count-table granularity `b` chosen by Algorithm 1.
    pub granularity: u32,
    /// The re-organized table, sorted on [`BDCC_COLUMN`] (appended last).
    pub table: Arc<StoredTable>,
    /// `T_COUNT` at granularity `b`.
    pub count: CountTable,
    /// Group-size histograms for every granularity (piggy-backed analysis).
    pub histograms: GranularityHistograms,
    /// Rows of the *original* table (the consolidation step may append
    /// relocated copies; scans through the count table see each logical row
    /// exactly once).
    pub logical_rows: usize,
}

impl BdccTable {
    /// Bits of use `use_idx` present in the truncated (granularity-`b`)
    /// group key.
    pub fn use_bits_at_granularity(&self, use_idx: usize) -> u32 {
        ones(truncate_mask(self.uses[use_idx].mask, self.total_bits, self.granularity))
    }

    /// The use's mask re-based to the truncated group key.
    pub fn use_mask_at_granularity(&self, use_idx: usize) -> u64 {
        truncate_mask(self.uses[use_idx].mask, self.total_bits, self.granularity)
    }

    /// Extract, from a truncated group key, the major bin-number bits of
    /// use `use_idx` (a `use_bits_at_granularity` wide value).
    pub fn group_bin_prefix(&self, use_idx: usize, group_key: u64) -> u64 {
        gather_bits(group_key, self.use_mask_at_granularity(use_idx))
    }
}

/// BDCC-cluster `table` on the given `(dimension, path)` uses
/// (Algorithm 1). `dims` must contain every referenced dimension.
pub fn cluster_table(
    db: &Database,
    table: TableId,
    use_specs: &[(DimId, Vec<FkId>)],
    dims: &[Dimension],
    cfg: &SelfTuneConfig,
) -> Result<BdccTable> {
    if use_specs.is_empty() {
        return Err(BdccError::Invalid(format!(
            "table {} has no dimension uses",
            db.catalog().table_name(table)
        )));
    }
    let stored = db.stored(table).ok_or_else(|| {
        BdccError::Catalog(format!("no storage for {}", db.catalog().table_name(table)))
    })?;

    // (i) Round-robin mask assignment at maximal granularity.
    let use_bits: Vec<UseBits> = use_specs
        .iter()
        .map(|(dim, path)| UseBits {
            dim_bits: dims[dim.0].bits(),
            fk_group: path.first().map(|fk| fk.0),
        })
        .collect();
    let (masks, total_bits) = assign_masks(&use_bits, cfg.interleave);
    let uses: Vec<DimensionUse> = use_specs
        .iter()
        .zip(&masks)
        .map(|((dim, path), &mask)| DimensionUse { dim: *dim, path: path.clone(), mask })
        .collect();

    // (ii) Compute `_bdcc_` at maximal granularity.
    let rows = stored.rows();
    let mut bdcc = vec![0u64; rows];
    for u in &uses {
        let dim = &dims[u.dim.0];
        let host_rows = resolve_host_rows(db, table, &u.path)?;
        let host_bins = host_bin_numbers(db, dim)?;
        let dim_bits = dim.bits();
        for (r, &host_row) in host_rows.iter().enumerate() {
            let bin = host_bins[host_row as usize];
            bdcc[r] |= scatter_bits(bin, dim_bits, u.mask);
        }
    }
    let perm = sort_permutation(&bdcc);
    let sorted_keys: Vec<u64> = perm.iter().map(|&i| bdcc[i]).collect();

    // Re-organize all columns plus the clustering key.
    let source_columns: Vec<Column> = (0..stored.arity())
        .map(|i| stored.column(i).map(|c| (**c).clone()))
        .collect::<std::result::Result<_, _>>()?;
    let mut permuted = apply_permutation(&source_columns, &perm);
    permuted.push(Column::from_i64(sorted_keys.iter().map(|&k| k as i64).collect()));
    let mut named: Vec<(String, Column)> = stored
        .schema()
        .columns
        .iter()
        .map(|c| c.name.clone())
        .chain(std::iter::once(BDCC_COLUMN.to_string()))
        .zip(permuted)
        .collect();

    // Piggy-backed group-size analysis.
    let histograms = GranularityHistograms::from_sorted_keys(&sorted_keys, total_bits);

    // (iii) Choose the granularity from the densest column and AR.
    let densest = stored.densest_column_width();
    let min_rows = (cfg.ar_bytes as f64 / densest).ceil().max(1.0) as u64;
    let granularity = choose_granularity(&histograms, min_rows, cfg);

    // (iv) Count table at the reduced granularity.
    let mut count = CountTable::from_sorted_keys(&sorted_keys, total_bits, granularity)?;
    let logical_rows = rows;

    // Small-group consolidation (optional).
    if cfg.consolidate_small_groups {
        crate::reorg::consolidate_small_groups(&mut named, &mut count, min_rows as usize);
    }

    let table_name = format!("{}_bdcc", stored.name());
    let rebuilt = StoredTable::from_columns(&table_name, named)?;

    Ok(BdccTable {
        source: table,
        uses,
        total_bits,
        granularity,
        table: Arc::new(rebuilt),
        count,
        histograms,
        logical_rows,
    })
}

/// Bin number of every row of the dimension's host table.
pub fn host_bin_numbers(db: &Database, dim: &Dimension) -> Result<Vec<u64>> {
    let host = db
        .stored(dim.table)
        .ok_or_else(|| BdccError::Catalog(format!("no storage for dimension {}", dim.name)))?;
    let key_columns: Vec<_> = dim
        .key
        .iter()
        .map(|k| host.column_by_name(k))
        .collect::<std::result::Result<Vec<_>, _>>()?;
    let mut bins = Vec::with_capacity(host.rows());
    for row in 0..host.rows() {
        let kv = KeyValue(key_columns.iter().map(|c| c.datum(row)).collect());
        bins.push(dim.bin_of(&kv));
    }
    Ok(bins)
}

/// The largest granularity `b ≤ min(B, cap)` with at least
/// `min_fraction_above_ar` of the groups holding ≥ `min_rows` rows
/// (Algorithm 1(iii)); falls back to 0 (a single group) if even coarse
/// granularities fail.
fn choose_granularity(
    histograms: &GranularityHistograms,
    min_rows: u64,
    cfg: &SelfTuneConfig,
) -> u32 {
    let upper = histograms.total_bits.min(cfg.max_granularity);
    for g in (1..=upper).rev() {
        if histograms.fraction_at_least(g, min_rows) >= cfg.min_fraction_above_ar {
            return g;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdcc_catalog::{Catalog, ColumnDef, TableDef};
    use bdcc_storage::{DataType, Datum, TableBuilder};

    fn dim_over(values: &[i64], id: usize, table: TableId) -> Dimension {
        crate::binning::create_dimension(
            DimId(id),
            &format!("D{id}"),
            table,
            vec!["k".into()],
            values.iter().map(|&v| (KeyValue::single(Datum::Int(v)), 1)).collect(),
            &crate::binning::BinningConfig::default(),
        )
        .unwrap()
    }

    /// A fact table with a local dimension over column `k`.
    fn single_dim_db(rows: usize) -> (Database, TableId) {
        let mut cat = Catalog::new();
        let t = cat
            .create_table(TableDef {
                name: "fact".into(),
                columns: vec![
                    ColumnDef { name: "k".into(), data_type: DataType::Int },
                    ColumnDef { name: "v".into(), data_type: DataType::Int },
                ],
                primary_key: vec![],
            })
            .unwrap();
        let k: Vec<i64> = (0..rows as i64).map(|i| i % 8).collect();
        let v: Vec<i64> = (0..rows as i64).collect();
        let mut db = Database::new(cat);
        db.attach(
            t,
            Arc::new(
                TableBuilder::new("fact")
                    .column("k", Column::from_i64(k))
                    .column("v", Column::from_i64(v))
                    .build()
                    .unwrap(),
            ),
        );
        (db, t)
    }

    #[test]
    fn clustered_table_is_sorted_on_bdcc() {
        let (db, t) = single_dim_db(64);
        let dims = vec![dim_over(&(0..8).collect::<Vec<_>>(), 0, t)];
        let cfg = SelfTuneConfig {
            consolidate_small_groups: false,
            min_fraction_above_ar: 0.5,
            ar_bytes: 8, // tiny AR so every group qualifies
            ..Default::default()
        };
        let b = cluster_table(&db, t, &[(DimId(0), vec![])], &dims, &cfg).unwrap();
        assert_eq!(b.total_bits, 3);
        let keys = b.table.column_by_name(BDCC_COLUMN).unwrap().as_i64().unwrap().to_vec();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        // All 64 rows present, 8 groups of 8.
        assert_eq!(b.table.rows(), 64);
        assert_eq!(b.count.group_count(), 8);
        assert!(b.count.groups.iter().all(|g| g.count == 8));
        // Rows in each group actually hold the right k value.
        let k = b.table.column_by_name("k").unwrap().as_i64().unwrap().to_vec();
        for g in b.count.iter() {
            let vals: Vec<i64> = k[g.start..g.start + g.count].to_vec();
            assert!(vals.iter().all(|&v| v == vals[0]));
        }
        assert_eq!(b.granularity, 3);
    }

    #[test]
    fn granularity_shrinks_when_groups_too_small() {
        let (db, t) = single_dim_db(64);
        let dims = vec![dim_over(&(0..8).collect::<Vec<_>>(), 0, t)];
        // Groups of 8 rows × 8 bytes = 64 bytes; demand 256-byte groups →
        // need ≥ 32 rows per group → granularity 1 (2 groups of 32).
        let cfg =
            SelfTuneConfig { consolidate_small_groups: false, ar_bytes: 256, ..Default::default() };
        let b = cluster_table(&db, t, &[(DimId(0), vec![])], &dims, &cfg).unwrap();
        assert_eq!(b.granularity, 1);
        assert_eq!(b.count.group_count(), 2);
    }

    #[test]
    fn two_dimensions_interleave() {
        let mut cat = Catalog::new();
        let t = cat
            .create_table(TableDef {
                name: "f".into(),
                columns: vec![
                    ColumnDef { name: "a".into(), data_type: DataType::Int },
                    ColumnDef { name: "b".into(), data_type: DataType::Int },
                ],
                primary_key: vec![],
            })
            .unwrap();
        let mut db = Database::new(cat);
        let a: Vec<i64> = (0..32).map(|i| i % 4).collect();
        let bcol: Vec<i64> = (0..32).map(|i| (i / 4) % 4).collect();
        db.attach(
            t,
            Arc::new(
                TableBuilder::new("f")
                    .column("a", Column::from_i64(a.clone()))
                    .column("b", Column::from_i64(bcol.clone()))
                    .build()
                    .unwrap(),
            ),
        );
        let dims = vec![
            Dimension { key: vec!["a".into()], ..dim_over(&[0, 1, 2, 3], 0, t) },
            Dimension { key: vec!["b".into()], ..dim_over(&[0, 1, 2, 3], 1, t) },
        ];
        let cfg =
            SelfTuneConfig { ar_bytes: 8, consolidate_small_groups: false, ..Default::default() };
        let bt =
            cluster_table(&db, t, &[(DimId(0), vec![]), (DimId(1), vec![])], &dims, &cfg).unwrap();
        assert_eq!(bt.total_bits, 4);
        // Z-order: masks 1010 and 0101.
        assert_eq!(bt.uses[0].mask, 0b1010);
        assert_eq!(bt.uses[1].mask, 0b0101);
        // Verify _bdcc_ of each row equals manual interleave of (a, b).
        let keys = bt.table.column_by_name(BDCC_COLUMN).unwrap().as_i64().unwrap().to_vec();
        let av = bt.table.column_by_name("a").unwrap().as_i64().unwrap().to_vec();
        let bv = bt.table.column_by_name("b").unwrap().as_i64().unwrap().to_vec();
        for i in 0..32 {
            let expect =
                scatter_bits(av[i] as u64, 2, 0b1010) | scatter_bits(bv[i] as u64, 2, 0b0101);
            assert_eq!(keys[i] as u64, expect);
        }
    }

    #[test]
    fn no_uses_is_an_error() {
        let (db, t) = single_dim_db(4);
        assert!(cluster_table(&db, t, &[], &[], &SelfTuneConfig::default()).is_err());
    }

    #[test]
    fn group_bin_prefix_extracts_major_bits() {
        let (db, t) = single_dim_db(64);
        let dims = vec![dim_over(&(0..8).collect::<Vec<_>>(), 0, t)];
        let cfg =
            SelfTuneConfig { ar_bytes: 8, consolidate_small_groups: false, ..Default::default() };
        let b = cluster_table(&db, t, &[(DimId(0), vec![])], &dims, &cfg).unwrap();
        // Single use: group key *is* the bin prefix.
        for g in b.count.iter() {
            assert_eq!(b.group_bin_prefix(0, g.key), g.key);
        }
        assert_eq!(b.use_bits_at_granularity(0), b.granularity);
    }
}
