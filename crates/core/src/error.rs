//! Error type for BDCC schema design and clustering.

use std::fmt;

/// Errors raised by dimension creation, clustering or schema design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BdccError {
    /// Invalid argument or inconsistent design input.
    Invalid(String),
    /// A dimension path refers to foreign keys that do not chain.
    BrokenPath(String),
    /// Underlying storage problem.
    Storage(String),
    /// Catalog problem.
    Catalog(String),
}

impl fmt::Display for BdccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BdccError::Invalid(m) => write!(f, "invalid: {m}"),
            BdccError::BrokenPath(m) => write!(f, "broken dimension path: {m}"),
            BdccError::Storage(m) => write!(f, "storage: {m}"),
            BdccError::Catalog(m) => write!(f, "catalog: {m}"),
        }
    }
}

impl std::error::Error for BdccError {}

impl From<bdcc_storage::StorageError> for BdccError {
    fn from(e: bdcc_storage::StorageError) -> Self {
        BdccError::Storage(e.to_string())
    }
}

impl From<bdcc_catalog::CatalogError> for BdccError {
    fn from(e: bdcc_catalog::CatalogError) -> Self {
        BdccError::Catalog(e.to_string())
    }
}

impl From<bdcc_pool::PoolFailure> for BdccError {
    fn from(e: bdcc_pool::PoolFailure) -> Self {
        BdccError::Invalid(format!("worker pool: {e}"))
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, BdccError>;
