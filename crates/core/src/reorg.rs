//! Small-group consolidation ("puff pastry" aftercare).
//!
//! After bulk-load, "the low percentage of data in very small groups …
//! is copied and appended once more to table T, and the original very small
//! groups are marked invalid in the count-table. Thus, very small groups
//! get stored consecutively, generating better caching of these frequently
//! re-accessed pages" (Section III). We append the copies in key order and
//! re-point the count-table entries at the consolidated region, marking
//! them [`GroupEntry::relocated`].

use bdcc_storage::Column;

use crate::count_table::CountTable;

/// Consolidate all groups smaller than `min_rows` rows: their rows are
/// appended (in group-key order) to `columns`, and their count-table
/// entries re-pointed at the new consecutive location.
///
/// Returns the number of relocated groups.
pub fn consolidate_small_groups(
    columns: &mut [(String, Column)],
    count: &mut CountTable,
    min_rows: usize,
) -> usize {
    let original_rows: usize = columns.first().map(|(_, c)| c.len()).unwrap_or(0);
    let small: Vec<usize> = count
        .groups
        .iter()
        .enumerate()
        .filter(|(_, g)| g.count < min_rows && !g.relocated)
        .map(|(i, _)| i)
        .collect();
    if small.is_empty() {
        return 0;
    }
    // Gather row indices of all small groups, in key order.
    let mut rows: Vec<usize> = Vec::new();
    for &gi in &small {
        let g = count.groups[gi];
        rows.extend(g.start..g.start + g.count);
    }
    // Append copies to every column.
    for (_, col) in columns.iter_mut() {
        let copied = col.gather(&rows);
        col.append(&copied).expect("gather preserves the column type");
    }
    // Re-point the entries: the paper marks originals invalid and adds the
    // appended copies; re-pointing is observationally the same for scans.
    let mut offset = original_rows;
    for &gi in &small {
        let g = &mut count.groups[gi];
        g.start = offset;
        g.relocated = true;
        offset += g.count;
    }
    small.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Vec<(String, Column)>, CountTable) {
        // Sorted 2-bit keys: group 0 has 4 rows, group 1 has 1, group 3 has 2.
        let keys: Vec<u64> = vec![0, 0, 0, 0, 1, 3, 3];
        let vals = Column::from_i64(vec![10, 11, 12, 13, 20, 30, 31]);
        let kcol = Column::from_i64(keys.iter().map(|&k| k as i64).collect());
        let count = CountTable::from_sorted_keys(&keys, 2, 2).unwrap();
        (vec![("v".into(), vals), ("_bdcc_".into(), kcol)], count)
    }

    #[test]
    fn small_groups_are_relocated_consecutively() {
        let (mut cols, mut count) = setup();
        let n = consolidate_small_groups(&mut cols, &mut count, 3);
        assert_eq!(n, 2); // groups with 1 and 2 rows
                          // Table grew by the 3 copied rows.
        assert_eq!(cols[0].1.len(), 10);
        // Entries re-pointed at the tail, in key order, consecutively.
        let g1 = count.find(1).unwrap();
        let g3 = count.find(3).unwrap();
        assert!(g1.relocated && g3.relocated);
        assert_eq!(g1.start, 7);
        assert_eq!(g3.start, 8);
        // Values visible through the count table are unchanged.
        let v = cols[0].1.as_i64().unwrap();
        assert_eq!(&v[g1.start..g1.start + g1.count], &[20]);
        assert_eq!(&v[g3.start..g3.start + g3.count], &[30, 31]);
        // Big group untouched.
        let g0 = count.find(0).unwrap();
        assert!(!g0.relocated);
        assert_eq!(g0.start, 0);
        // Logical rows through the count table unchanged.
        assert_eq!(count.total_rows(), 7);
    }

    #[test]
    fn no_relocation_when_all_groups_big_enough() {
        let (mut cols, mut count) = setup();
        let n = consolidate_small_groups(&mut cols, &mut count, 1);
        assert_eq!(n, 0);
        assert_eq!(cols[0].1.len(), 7);
    }

    #[test]
    fn relocation_is_idempotent() {
        let (mut cols, mut count) = setup();
        consolidate_small_groups(&mut cols, &mut count, 3);
        let rows_after_first = cols[0].1.len();
        // Relocated groups are skipped on a second pass.
        let n = consolidate_small_groups(&mut cols, &mut count, 3);
        assert_eq!(n, 0);
        assert_eq!(cols[0].1.len(), rows_after_first);
    }
}
