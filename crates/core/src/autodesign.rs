//! Algorithm 2: semi-automatic BDCC schema design.
//!
//! The DBA writes classic DDL — tables, foreign keys, and `CREATE INDEX`
//! statements — and the algorithm derives the whole co-clustered schema:
//!
//! 1. **Derive** ([`derive_design`]): traverse the schema DAG from the
//!    leaves; an index equal to a foreign key *imports* all dimension uses
//!    of the referenced table (prefixing the foreign key to their paths),
//!    any other index *declares* a new dimension.
//! 2. **Create dimensions** ([`create_dimensions`]): frequency-balanced
//!    binning over the union of all use sites joined over their paths
//!    (ref [4]), capped at `max_bits` (13 in the paper).
//! 3. **Cluster** ([`design_and_cluster`]): Algorithm 1 on every table with
//!    at least one use; tables without uses stay unclustered.
//!
//! [`preview_design`] runs step 1 plus statistics-only sizing, which
//! reproduces the paper's Section IV dimension and dimension-use tables at
//! SF100 scale without generating 100 GB of data.

use std::collections::BTreeMap;

use bdcc_catalog::{Catalog, Database, FkId, TableId};

use crate::bdcc_table::{cluster_table, BdccTable, SelfTuneConfig};
use crate::binning::{bits_for_ndv, create_dimension, BinningConfig};
use crate::dimension::{DimId, Dimension, KeyValue};
use crate::error::{BdccError, Result};
use crate::mask::{assign_masks, mask_to_string, UseBits};
use crate::resolve::resolve_host_rows;

/// A dimension declared by step 1 (before any data is touched).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimSpec {
    pub id: DimId,
    /// `D_NATION`-style name derived from the hint name (`nation_idx` →
    /// `D_NATION`) or, if the hint has no usable stem, from the host table.
    pub name: String,
    pub table: TableId,
    pub key: Vec<String>,
}

/// A planned dimension use: which dimension a table will be clustered on,
/// over which path. Masks are assigned later by Algorithm 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignUse {
    pub dim: DimId,
    pub path: Vec<FkId>,
}

/// Output of step 1: dimensions to create and uses per table.
#[derive(Debug, Clone, Default)]
pub struct SchemaDesign {
    pub dim_specs: Vec<DimSpec>,
    /// Uses per table, in hint order (which fixes round-robin priority).
    pub uses: BTreeMap<TableId, Vec<DesignUse>>,
}

/// Design-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct DesignConfig {
    pub binning: BinningConfig,
    pub selftune: SelfTuneConfig,
    /// Upper bound on dimension uses per table (the paper notes 5–8 is the
    /// realistic ceiling); later uses are dropped with their hint order.
    pub max_uses_per_table: usize,
}

impl Default for DesignConfig {
    fn default() -> Self {
        DesignConfig {
            binning: BinningConfig::default(),
            selftune: SelfTuneConfig::default(),
            max_uses_per_table: 8,
        }
    }
}

/// Step 1: interpret index declarations as BDCC hints (Algorithm 2(i)).
pub fn derive_design(catalog: &Catalog, cfg: &DesignConfig) -> Result<SchemaDesign> {
    let graph = bdcc_catalog::SchemaGraph::build(catalog);
    let order = graph.leaf_first_order()?;
    let mut design = SchemaDesign::default();
    for table in order {
        let mut uses: Vec<DesignUse> = Vec::new();
        for hint in catalog.hints_on(table) {
            if let Some(fk) = catalog.fk_matching_columns(table, &hint.columns) {
                // Index equals a foreign key: inductively import the
                // referenced table's uses, FK id prefixed to each path.
                let imported = design.uses.get(&fk.to_table).cloned().unwrap_or_default();
                for u in imported {
                    let mut path = Vec::with_capacity(u.path.len() + 1);
                    path.push(fk.id);
                    path.extend(u.path);
                    push_unique(&mut uses, DesignUse { dim: u.dim, path });
                }
            } else {
                // A genuine dimension hint: declare a new dimension.
                let id = DimId(design.dim_specs.len());
                design.dim_specs.push(DimSpec {
                    id,
                    name: dimension_name(&hint.name, catalog.table_name(table)),
                    table,
                    key: hint.columns.clone(),
                });
                push_unique(&mut uses, DesignUse { dim: id, path: Vec::new() });
            }
        }
        uses.truncate(cfg.max_uses_per_table);
        if !uses.is_empty() {
            design.uses.insert(table, uses);
        }
    }
    Ok(design)
}

fn push_unique(uses: &mut Vec<DesignUse>, u: DesignUse) {
    if !uses.contains(&u) {
        uses.push(u);
    }
}

/// `nation_idx` → `D_NATION`; falls back to the host table name.
fn dimension_name(hint_name: &str, table_name: &str) -> String {
    let stem =
        hint_name.strip_suffix("_idx").or_else(|| hint_name.strip_suffix("_index")).unwrap_or("");
    let stem = if stem.is_empty() { table_name } else { stem };
    format!("D_{}", stem.to_uppercase())
}

/// Step 2: create every declared dimension from the data (Algorithm 2(ii)).
///
/// The histogram is taken over "the union of all tables Ti joined over
/// dimension path Pi, projecting only the dimension keys": every host value
/// gets weight 1 (surjective coverage) plus one per referencing tuple at
/// every use site.
pub fn create_dimensions(
    db: &Database,
    design: &SchemaDesign,
    binning: &BinningConfig,
) -> Result<Vec<Dimension>> {
    let mut dims = Vec::with_capacity(design.dim_specs.len());
    for spec in &design.dim_specs {
        let host = db.stored(spec.table).ok_or_else(|| {
            BdccError::Catalog(format!("no storage for {}", db.catalog().table_name(spec.table)))
        })?;
        let key_columns: Vec<_> = spec
            .key
            .iter()
            .map(|k| host.column_by_name(k))
            .collect::<std::result::Result<Vec<_>, _>>()?;
        // Weight per host row, starting at 1 for coverage.
        let mut weights = vec![1u64; host.rows()];
        for (&table, uses) in &design.uses {
            for u in uses {
                if u.dim != spec.id {
                    continue;
                }
                let host_rows = resolve_host_rows(db, table, &u.path)?;
                for hr in host_rows {
                    weights[hr as usize] += 1;
                }
            }
        }
        let values: Vec<(KeyValue, u64)> = (0..host.rows())
            .map(|row| (KeyValue(key_columns.iter().map(|c| c.datum(row)).collect()), weights[row]))
            .collect();
        dims.push(create_dimension(
            spec.id,
            &spec.name,
            spec.table,
            spec.key.clone(),
            values,
            binning,
        )?);
    }
    Ok(dims)
}

/// A fully designed and clustered schema.
#[derive(Debug, Clone)]
pub struct BdccSchema {
    pub design: SchemaDesign,
    pub dimensions: Vec<Dimension>,
    /// Clustered tables; tables without dimension uses are absent and keep
    /// their plain storage.
    pub tables: BTreeMap<TableId, BdccTable>,
}

impl BdccSchema {
    /// The clustered table for `id`, if it was clustered.
    pub fn table(&self, id: TableId) -> Option<&BdccTable> {
        self.tables.get(&id)
    }

    /// The dimension by id.
    pub fn dimension(&self, id: DimId) -> &Dimension {
        &self.dimensions[id.0]
    }

    /// Find a dimension by name.
    pub fn dimension_by_name(&self, name: &str) -> Option<&Dimension> {
        self.dimensions.iter().find(|d| d.name == name)
    }
}

/// Steps 1–3 end to end: derive, create dimensions, cluster every table.
/// Independent tables are clustered in parallel on the shared persistent
/// [`WorkerPool`](bdcc_pool::WorkerPool) (bulk-load is the expensive
/// phase) — the same parked worker set query execution later fans out on,
/// so schema build pays no thread create/join either.
pub fn design_and_cluster(db: &Database, cfg: &DesignConfig) -> Result<BdccSchema> {
    let design = derive_design(db.catalog(), cfg)?;
    let dimensions = create_dimensions(db, &design, &cfg.binning)?;
    type UseSpecs = Vec<(DimId, Vec<FkId>)>;
    let entries: Vec<(TableId, UseSpecs)> = design
        .uses
        .iter()
        .map(|(&t, uses)| (t, uses.iter().map(|u| (u.dim, u.path.clone())).collect()))
        .collect();
    // Width capped at the machine's parallelism: one task per table, but
    // never grow the persistent pool to the table count (a wide schema
    // would otherwise park one thread per table for the process lifetime).
    let width = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let results: Vec<(TableId, BdccTable)> =
        bdcc_pool::WorkerPool::shared().scope_run(width, entries.len(), |i| {
            let (t, specs) = &entries[i];
            cluster_table(db, *t, specs, &dimensions, &cfg.selftune).map(|bt| (*t, bt))
        })?;
    let mut tables = BTreeMap::new();
    for (t, bt) in results {
        tables.insert(t, bt);
    }
    Ok(BdccSchema { design, dimensions, tables })
}

// ---------------------------------------------------------------------------
// Statistics-only preview (paper-scale reproduction without data).
// ---------------------------------------------------------------------------

/// One row of the paper's dimension table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreviewDimension {
    pub name: String,
    pub bits: u32,
    pub table: String,
    pub key: Vec<String>,
}

/// One row of the paper's dimension-use table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreviewUse {
    pub dim_name: String,
    /// `FK_PS_S.FK_S_N`-style rendering; `-` for a local dimension.
    pub path: String,
    /// Mask rendered at the table's full granularity.
    pub mask: String,
}

/// Preview of a whole table's clustering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreviewTable {
    pub table: String,
    pub total_bits: u32,
    pub uses: Vec<PreviewUse>,
}

/// Derive the design and size it from distinct-value statistics alone
/// (`ndv_by_dimension` maps dimension names to their key's NDV). This is
/// how the harness reprints the paper's SF100 tables exactly.
pub fn preview_design(
    catalog: &Catalog,
    ndv_by_dimension: &BTreeMap<String, usize>,
    cfg: &DesignConfig,
) -> Result<(Vec<PreviewDimension>, Vec<PreviewTable>)> {
    let design = derive_design(catalog, cfg)?;
    let mut dims_out = Vec::new();
    let mut bits = Vec::with_capacity(design.dim_specs.len());
    for spec in &design.dim_specs {
        let ndv = *ndv_by_dimension.get(&spec.name).ok_or_else(|| {
            BdccError::Invalid(format!("no NDV statistic for dimension {}", spec.name))
        })?;
        let b = bits_for_ndv(ndv, &cfg.binning);
        bits.push(b);
        dims_out.push(PreviewDimension {
            name: spec.name.clone(),
            bits: b,
            table: catalog.table_name(spec.table).to_string(),
            key: spec.key.clone(),
        });
    }
    let mut tables_out = Vec::new();
    for (&table, uses) in &design.uses {
        let use_bits: Vec<UseBits> = uses
            .iter()
            .map(|u| UseBits { dim_bits: bits[u.dim.0], fk_group: u.path.first().map(|f| f.0) })
            .collect();
        let (masks, total_bits) = assign_masks(&use_bits, cfg.selftune.interleave);
        let uses_out = uses
            .iter()
            .zip(&masks)
            .map(|(u, &m)| PreviewUse {
                dim_name: design.dim_specs[u.dim.0].name.clone(),
                path: render_path(catalog, &u.path),
                mask: mask_to_string(m, total_bits),
            })
            .collect();
        tables_out.push(PreviewTable {
            table: catalog.table_name(table).to_string(),
            total_bits,
            uses: uses_out,
        });
    }
    Ok((dims_out, tables_out))
}

/// `FK_PS_S.FK_S_N` rendering of a dimension path.
pub fn render_path(catalog: &Catalog, path: &[FkId]) -> String {
    if path.is_empty() {
        "-".to_string()
    } else {
        path.iter().map(|&fk| catalog.fk(fk).name.clone()).collect::<Vec<_>>().join(".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdcc_catalog::{ColumnDef, TableDef};
    use bdcc_storage::DataType;

    /// nation ← supplier; nation ← customer ← orders (with a local date dim).
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for (name, cols) in [
            ("nation", vec!["n_nationkey", "n_regionkey"]),
            ("customer", vec!["c_custkey", "c_nationkey"]),
            ("orders", vec!["o_orderkey", "o_custkey", "o_orderdate"]),
        ] {
            c.create_table(TableDef {
                name: name.into(),
                columns: cols
                    .iter()
                    .map(|n| ColumnDef {
                        name: n.to_string(),
                        data_type: if n.ends_with("date") { DataType::Date } else { DataType::Int },
                    })
                    .collect(),
                primary_key: vec![cols[0].to_string()],
            })
            .unwrap();
        }
        c.create_foreign_key("FK_C_N", "customer", &["c_nationkey"], "nation", &["n_nationkey"])
            .unwrap();
        c.create_foreign_key("FK_O_C", "orders", &["o_custkey"], "customer", &["c_custkey"])
            .unwrap();
        // Hints: a compound dimension on nation, FK hints, a local date dim.
        c.create_index("nation_idx", "nation", &["n_regionkey", "n_nationkey"]).unwrap();
        c.create_index("c_nk", "customer", &["c_nationkey"]).unwrap();
        c.create_index("date_idx", "orders", &["o_orderdate"]).unwrap();
        c.create_index("o_ck", "orders", &["o_custkey"]).unwrap();
        c
    }

    #[test]
    fn design_propagates_uses_through_fk_hints() {
        let cat = catalog();
        let design = derive_design(&cat, &DesignConfig::default()).unwrap();
        assert_eq!(design.dim_specs.len(), 2);
        assert_eq!(design.dim_specs[0].name, "D_NATION");
        assert_eq!(design.dim_specs[1].name, "D_DATE");

        let nation = cat.table_id("nation").unwrap();
        let customer = cat.table_id("customer").unwrap();
        let orders = cat.table_id("orders").unwrap();
        // nation: local D_NATION use.
        assert_eq!(design.uses[&nation], vec![DesignUse { dim: DimId(0), path: vec![] }]);
        // customer: D_NATION over FK_C_N.
        assert_eq!(design.uses[&customer].len(), 1);
        assert_eq!(design.uses[&customer][0].dim, DimId(0));
        assert_eq!(design.uses[&customer][0].path.len(), 1);
        // orders: local D_DATE first (hint order), then D_NATION over
        // FK_O_C.FK_C_N.
        let ou = &design.uses[&orders];
        assert_eq!(ou.len(), 2);
        assert_eq!(ou[0].dim, DimId(1));
        assert!(ou[0].path.is_empty());
        assert_eq!(ou[1].dim, DimId(0));
        assert_eq!(ou[1].path.len(), 2);
    }

    #[test]
    fn dimension_names_derive_from_hints() {
        assert_eq!(dimension_name("nation_idx", "nation"), "D_NATION");
        assert_eq!(dimension_name("date_idx", "orders"), "D_DATE");
        assert_eq!(dimension_name("myindex", "part"), "D_PART");
    }

    #[test]
    fn preview_sizes_from_ndv() {
        let cat = catalog();
        let mut ndv = BTreeMap::new();
        ndv.insert("D_NATION".to_string(), 25);
        ndv.insert("D_DATE".to_string(), 2406);
        let (dims, tables) = preview_design(&cat, &ndv, &DesignConfig::default()).unwrap();
        assert_eq!(dims[0].bits, 5);
        assert_eq!(dims[1].bits, 12);
        let orders = tables.iter().find(|t| t.table == "orders").unwrap();
        assert_eq!(orders.total_bits, 17);
        assert_eq!(orders.uses[0].dim_name, "D_DATE");
        assert_eq!(orders.uses[1].path, "FK_O_C.FK_C_N");
        // Round-robin: date/nation alternate for 10 bits, date fills 7 more.
        assert_eq!(orders.uses[0].mask, "10101010101111111");
    }

    #[test]
    fn max_uses_cap_is_enforced() {
        let cat = catalog();
        let cfg = DesignConfig { max_uses_per_table: 1, ..Default::default() };
        let design = derive_design(&cat, &cfg).unwrap();
        let orders = cat.table_id("orders").unwrap();
        assert_eq!(design.uses[&orders].len(), 1);
        // The first hint (local D_DATE) wins.
        assert_eq!(design.uses[&orders][0].dim, DimId(1));
    }

    #[test]
    fn duplicate_hints_do_not_duplicate_uses() {
        let mut cat = catalog();
        cat.create_index("o_ck2", "orders", &["o_custkey"]).unwrap();
        let design = derive_design(&cat, &DesignConfig::default()).unwrap();
        let orders = cat.table_id("orders").unwrap();
        assert_eq!(design.uses[&orders].len(), 2);
    }
}
