//! # bdcc-core — Bitwise Dimensional Co-Clustering
//!
//! Faithful implementation of *Automatic Schema Design for Co-Clustered
//! Tables* (Baumann, Boncz, Sattler — ICDE 2013):
//!
//! * [`dimension`] — BDCC dimensions (Definition 1): order-respecting
//!   surjective binnings of (possibly composite) dimension keys, with
//!   granularity reduction and contiguous bin-range lookup for predicates
//!   (including prefix predicates on compound keys such as
//!   `NATION(n_regionkey, n_nationkey)`).
//! * [`binning`] — frequency-balanced dimension creation over the union of
//!   all use sites (the ref [4] technique), plus the equi-width baseline.
//! * [`mask`] — `_bdcc_` bit algebra: scatter/gather between bin numbers
//!   and mask positions, and the three interleaving strategies (round-robin
//!   per use = Z-order, round-robin per foreign key, major-minor).
//! * [`resolve`] — dimension-path resolution over foreign keys
//!   (Definition 2).
//! * [`bdcc_table`] — BDCC tables (Definitions 3–4) and the self-tuned
//!   bulk-load of **Algorithm 1**, including the densest-column /
//!   efficient-random-access-size granularity choice.
//! * [`count_table`] — the `T_COUNT` metadata table.
//! * [`histogram`] — piggy-backed logarithmic group-size histograms used by
//!   the self-tuning and the correlated-dimension ("puff pastry") analysis.
//! * [`reorg`] — post-load consolidation of very small groups.
//! * [`autodesign`] — **Algorithm 2**: the semi-automatic schema design
//!   that interprets `CREATE INDEX` statements as hints, propagates
//!   dimension uses over foreign keys, creates dimensions, and clusters the
//!   whole schema; plus a statistics-only preview that reproduces the
//!   paper's Section IV design tables.
//!
//! The storage substrate lives in `bdcc-storage`, schema metadata in
//! `bdcc-catalog`, and query execution (scatter scans, sandwich operators,
//! per-scheme planning) in `bdcc-exec`.

pub mod autodesign;
pub mod bdcc_table;
pub mod binning;
pub mod count_table;
pub mod dimension;
pub mod error;
pub mod histogram;
pub mod mask;
pub mod reorg;
pub mod resolve;

pub use autodesign::{
    create_dimensions, derive_design, design_and_cluster, preview_design, render_path, BdccSchema,
    DesignConfig, DesignUse, DimSpec, PreviewDimension, PreviewTable, PreviewUse, SchemaDesign,
};
pub use bdcc_table::{cluster_table, BdccTable, DimensionUse, SelfTuneConfig, BDCC_COLUMN};
pub use binning::{bits_for_ndv, create_dimension, BinningConfig, BinningStrategy};
pub use count_table::{CountTable, GroupEntry};
pub use dimension::{bits_for_bins, BinEntry, DimId, Dimension, KeyValue};
pub use error::{BdccError, Result};
pub use histogram::GranularityHistograms;
pub use mask::{
    assign_masks, gather_bits, mask_to_string, ones, scatter_bits, truncate_mask,
    InterleaveStrategy, UseBits,
};
pub use resolve::resolve_host_rows;
