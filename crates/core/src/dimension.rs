//! BDCC dimensions (Definition 1).
//!
//! A dimension is an *order-respecting surjective mapping* from the values
//! of a (possibly composite) dimension key onto bin numbers `0..m`. We store
//! the inclusive upper bound of each bin; bin lookup is a binary search and
//! the ordering property (Definition 1(iii)) makes range predicates map to
//! contiguous bin ranges — including equality on a *prefix* of a composite
//! key, which is exactly why the paper declares
//! `NATION(n_regionkey, n_nationkey)` as one compound dimension key.

use std::cmp::Ordering;

use bdcc_catalog::TableId;
use bdcc_storage::Datum;

use crate::error::{BdccError, Result};

/// Identifier of a dimension within one design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DimId(pub usize);

/// A (possibly composite) dimension-key value, ordered lexicographically.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyValue(pub Vec<Datum>);

impl KeyValue {
    /// Single-component key.
    pub fn single(d: Datum) -> KeyValue {
        KeyValue(vec![d])
    }

    /// Lexicographic comparison over the shared prefix of components.
    /// A shorter key acts as a *prefix pattern*: `(5,)` compares `Equal`
    /// to `(5, anything)`, which implements the paper's observation that a
    /// region equi-selection determines a consecutive D_NATION bin range.
    pub fn prefix_cmp(&self, other: &KeyValue) -> Ordering {
        for (a, b) in self.0.iter().zip(other.0.iter()) {
            match a.total_cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Full lexicographic comparison (shorter key sorts first on ties).
    pub fn full_cmp(&self, other: &KeyValue) -> Ordering {
        self.prefix_cmp(other).then(self.0.len().cmp(&other.0.len()))
    }
}

/// One dimension entry: bin number is the index; we store the inclusive
/// upper bound (Definition 1(iii) orders bins by value).
#[derive(Debug, Clone, PartialEq)]
pub struct BinEntry {
    /// Largest key value mapped into this bin.
    pub upper: KeyValue,
    /// Number of (weighted) source values in the bin, recorded at creation
    /// for diagnostics.
    pub weight: u64,
    /// Whether the bin holds a single distinct value (Definition 1(iv)).
    pub unique: bool,
}

/// A BDCC dimension `D = ⟨T, K, S⟩` (Definition 1).
#[derive(Debug, Clone)]
pub struct Dimension {
    pub id: DimId,
    /// Name in the paper's style, e.g. `D_NATION`.
    pub name: String,
    /// Host table `T(D)`.
    pub table: TableId,
    /// Dimension key `K(D)`: column names on the host table, major first.
    pub key: Vec<String>,
    /// Ordered bins `S(D)`; bin number = index.
    pub bins: Vec<BinEntry>,
}

impl Dimension {
    /// Number of bins `m(D)`.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// Dimension granularity `bits(D) = ⌈log2 m⌉` (Definition 1(vi)).
    pub fn bits(&self) -> u32 {
        bits_for_bins(self.bins.len())
    }

    /// `bin_D(v)`: the bin number of key value `v` (Definition 1(v)).
    /// Values above the last upper bound map to the last bin (the builder
    /// guarantees the last bound is the max, so this only matters for
    /// values unseen at creation time).
    pub fn bin_of(&self, v: &KeyValue) -> u64 {
        let idx = self.bins.partition_point(|b| b.upper.prefix_cmp(v) == Ordering::Less);
        idx.min(self.bins.len().saturating_sub(1)) as u64
    }

    /// The contiguous bin range `[lo, hi]` that may contain key values in
    /// `[lo_key, hi_key]` (either bound optional, bounds may be prefixes of
    /// the composite key). Returns `None` when the range is empty.
    pub fn bin_range(
        &self,
        lo_key: Option<&KeyValue>,
        hi_key: Option<&KeyValue>,
    ) -> Option<(u64, u64)> {
        if self.bins.is_empty() {
            return None;
        }
        let last = self.bins.len() - 1;
        // First bin whose upper bound >= lo_key: earlier bins hold only
        // values strictly below the bound. Clamped to the last bin so that
        // values unseen at creation time (which `bin_of` clamps there) are
        // still covered.
        let lo = match lo_key {
            None => 0,
            Some(k) => {
                self.bins.partition_point(|b| b.upper.prefix_cmp(k) == Ordering::Less).min(last)
            }
        };
        // Last bin that can contain values <= hi_key. Bins whose upper
        // bound prefix-equals the bound always qualify; the first bin
        // strictly above may still hold smaller values in its lower range
        // (e.g. (1,3) in a bin ((1,2), (2,1)]) unless it is a singleton bin
        // (Definition 1(iv)), whose only value is its upper bound.
        let hi = match hi_key {
            None => last,
            Some(k) => {
                let mut hi = self.bins.partition_point(|b| b.upper.prefix_cmp(k) == Ordering::Less);
                if k.0.len() < self.key.len() {
                    // Genuine prefix bound: bins whose upper prefix-equals
                    // the bound all qualify, and the first bin strictly
                    // above may still hold smaller values with the bound's
                    // prefix in its lower range — unless it is a singleton
                    // bin (Definition 1(iv)), whose only value is its upper.
                    while hi < last && self.bins[hi].upper.prefix_cmp(k) == Ordering::Equal {
                        hi += 1;
                    }
                    if hi > last {
                        hi = last;
                    } else if self.bins[hi].upper.prefix_cmp(k) == Ordering::Greater
                        && self.bins[hi].unique
                    {
                        match hi.checked_sub(1) {
                            Some(h) => hi = h,
                            None => return None,
                        }
                    }
                } else {
                    // Full-key bound: the first bin with upper ≥ bound is
                    // the last that can contain it; later bins start above.
                    hi = hi.min(last);
                }
                hi
            }
        };
        if lo > hi {
            return None;
        }
        Some((lo as u64, hi as u64))
    }

    /// Derive a dimension with reduced granularity `g` (Definition 1(vii)):
    /// chop the `bits(D) − g` least significant bits of every bin number and
    /// unite bins sharing the chopped number.
    pub fn reduce_granularity(&self, g: u32) -> Result<Dimension> {
        let bits = self.bits();
        if g > bits {
            return Err(BdccError::Invalid(format!(
                "cannot raise granularity of {} from {bits} to {g} bits",
                self.name
            )));
        }
        let shift = bits - g;
        let mut bins: Vec<BinEntry> = Vec::new();
        let mut current: Option<(u64, BinEntry)> = None;
        for (i, b) in self.bins.iter().enumerate() {
            let coarse = (i as u64) >> shift;
            match &mut current {
                Some((key, entry)) if *key == coarse => {
                    entry.upper = b.upper.clone();
                    entry.weight += b.weight;
                    entry.unique = false;
                }
                _ => {
                    if let Some((_, done)) = current.take() {
                        bins.push(done);
                    }
                    current = Some((coarse, b.clone()));
                }
            }
        }
        if let Some((_, done)) = current {
            bins.push(done);
        }
        Ok(Dimension {
            id: self.id,
            name: format!("{}|{g}", self.name),
            table: self.table,
            key: self.key.clone(),
            bins,
        })
    }
}

/// `⌈log2 m⌉`, with 0 bins needing 0 bits.
pub fn bits_for_bins(m: usize) -> u32 {
    if m <= 1 {
        0
    } else {
        usize::BITS - (m - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_dim(uppers: &[i64]) -> Dimension {
        Dimension {
            id: DimId(0),
            name: "D_TEST".into(),
            table: TableId(0),
            key: vec!["k".into()],
            bins: uppers
                .iter()
                .map(|&u| BinEntry {
                    upper: KeyValue::single(Datum::Int(u)),
                    weight: 1,
                    unique: false,
                })
                .collect(),
        }
    }

    #[test]
    fn bits_math() {
        assert_eq!(bits_for_bins(0), 0);
        assert_eq!(bits_for_bins(1), 0);
        assert_eq!(bits_for_bins(2), 1);
        assert_eq!(bits_for_bins(4), 2);
        assert_eq!(bits_for_bins(5), 3);
        assert_eq!(bits_for_bins(25), 5); // the paper's D_NATION
        assert_eq!(bits_for_bins(8192), 13); // the paper's 13-bit cap
    }

    #[test]
    fn bin_of_respects_boundaries() {
        let d = int_dim(&[10, 20, 30]);
        assert_eq!(d.bin_of(&KeyValue::single(Datum::Int(-5))), 0);
        assert_eq!(d.bin_of(&KeyValue::single(Datum::Int(10))), 0);
        assert_eq!(d.bin_of(&KeyValue::single(Datum::Int(11))), 1);
        assert_eq!(d.bin_of(&KeyValue::single(Datum::Int(30))), 2);
        // Beyond the last bound clamps to the last bin.
        assert_eq!(d.bin_of(&KeyValue::single(Datum::Int(99))), 2);
    }

    #[test]
    fn bin_of_is_monotonic() {
        let d = int_dim(&[3, 7, 13, 21]);
        let mut prev = 0;
        for v in -5..30 {
            let b = d.bin_of(&KeyValue::single(Datum::Int(v)));
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn bin_range_for_intervals() {
        let d = int_dim(&[10, 20, 30]);
        let kv = |v: i64| KeyValue::single(Datum::Int(v));
        assert_eq!(d.bin_range(Some(&kv(12)), Some(&kv(25))), Some((1, 2)));
        assert_eq!(d.bin_range(Some(&kv(31)), None), Some((2, 2)));
        assert_eq!(d.bin_range(None, Some(&kv(5))), Some((0, 0)));
        assert_eq!(d.bin_range(None, None), Some((0, 2)));
        // Point lookup.
        assert_eq!(d.bin_range(Some(&kv(20)), Some(&kv(20))), Some((1, 1)));
    }

    #[test]
    fn composite_prefix_selects_contiguous_range() {
        // D_NATION style: key (regionkey, nationkey); 2 nations per region.
        let bins: Vec<BinEntry> = [(0, 1), (0, 2), (1, 1), (1, 2), (2, 1)]
            .iter()
            .map(|&(r, n)| BinEntry {
                upper: KeyValue(vec![Datum::Int(r), Datum::Int(n)]),
                weight: 1,
                unique: true,
            })
            .collect();
        let d = Dimension {
            id: DimId(0),
            name: "D_NATION".into(),
            table: TableId(0),
            key: vec!["n_regionkey".into(), "n_nationkey".into()],
            bins,
        };
        // Region 1 equi-selection: prefix key (1,) → bins 2..=3.
        let prefix = KeyValue(vec![Datum::Int(1)]);
        assert_eq!(d.bin_range(Some(&prefix), Some(&prefix)), Some((2, 3)));
        // Region 0 → bins 0..=1; region 2 → bin 4.
        let p0 = KeyValue(vec![Datum::Int(0)]);
        assert_eq!(d.bin_range(Some(&p0), Some(&p0)), Some((0, 1)));
        let p2 = KeyValue(vec![Datum::Int(2)]);
        assert_eq!(d.bin_range(Some(&p2), Some(&p2)), Some((4, 4)));
        // Full-key point lookup still works.
        let full = KeyValue(vec![Datum::Int(1), Datum::Int(2)]);
        assert_eq!(d.bin_of(&full), 3);
    }

    #[test]
    fn reduce_granularity_merges_bins() {
        let d = int_dim(&[10, 20, 30, 40, 50]); // 5 bins → 3 bits
        assert_eq!(d.bits(), 3);
        let r = d.reduce_granularity(1).unwrap(); // chop 2 bits: 0..3→0, 4→1
        assert_eq!(r.bin_count(), 2);
        assert_eq!(r.bins[0].upper, KeyValue::single(Datum::Int(40)));
        assert_eq!(r.bins[0].weight, 4);
        assert_eq!(r.bins[1].upper, KeyValue::single(Datum::Int(50)));
        assert!(d.reduce_granularity(5).is_err());
    }

    #[test]
    fn reduce_to_same_granularity_is_identity() {
        let d = int_dim(&[1, 2, 3, 4]);
        let r = d.reduce_granularity(2).unwrap();
        assert_eq!(r.bin_count(), 4);
    }
}
