//! Dimension-path resolution (Definition 2).
//!
//! A dimension path `P = FK_T1_T2.FK_T2_T3...` leads from a context table to
//! the table hosting the dimension key. Resolution maps every row of the
//! context table to the host row it references, by composing foreign-key
//! lookups. Foreign-key columns must be integer-backed (true for every
//! schema in the paper); dimension *keys* themselves may be any type.

use std::collections::HashMap;

use bdcc_catalog::{Database, FkId, TableId};
use bdcc_storage::StoredTable;

use crate::error::{BdccError, Result};

/// For every row of `table`, the row index in the path's target table
/// (`table` itself for the empty path).
pub fn resolve_host_rows(db: &Database, table: TableId, path: &[FkId]) -> Result<Vec<u32>> {
    let stored = db.stored(table).ok_or_else(|| {
        BdccError::Catalog(format!("no storage for {}", db.catalog().table_name(table)))
    })?;
    let mut mapping: Vec<u32> = (0..stored.rows() as u32).collect();
    let mut current = table;
    for &fk_id in path {
        let fk = db.catalog().fk(fk_id);
        if fk.from_table != current {
            return Err(BdccError::BrokenPath(format!(
                "foreign key {} does not start at {}",
                fk.name,
                db.catalog().table_name(current)
            )));
        }
        let from = db.stored(current).ok_or_else(|| {
            BdccError::Catalog(format!("no storage for {}", db.catalog().table_name(current)))
        })?;
        let to = db.stored(fk.to_table).ok_or_else(|| {
            BdccError::Catalog(format!("no storage for {}", db.catalog().table_name(fk.to_table)))
        })?;
        let step = fk_step(from, &fk.from_columns, to, &fk.to_columns, &fk.name)?;
        for m in mapping.iter_mut() {
            *m = step[*m as usize];
        }
        current = fk.to_table;
    }
    Ok(mapping)
}

/// For every row of `from`, the row index in `to` referenced via the
/// (from_columns → to_columns) equality.
fn fk_step(
    from: &StoredTable,
    from_columns: &[String],
    to: &StoredTable,
    to_columns: &[String],
    fk_name: &str,
) -> Result<Vec<u32>> {
    if from_columns.len() == 1 {
        let to_vals = int_column(to, &to_columns[0])?;
        let mut index: HashMap<i64, u32> = HashMap::with_capacity(to_vals.len());
        for (row, &v) in to_vals.iter().enumerate() {
            index.insert(v, row as u32);
        }
        let from_vals = int_column(from, &from_columns[0])?;
        from_vals
            .iter()
            .map(|v| {
                index.get(v).copied().ok_or_else(|| {
                    BdccError::BrokenPath(format!(
                        "{fk_name}: dangling reference {v} from {} to {}",
                        from.name(),
                        to.name()
                    ))
                })
            })
            .collect()
    } else {
        let to_cols: Vec<&[i64]> =
            to_columns.iter().map(|c| int_column(to, c)).collect::<Result<_>>()?;
        let mut index: HashMap<Vec<i64>, u32> = HashMap::with_capacity(to.rows());
        for row in 0..to.rows() {
            index.insert(to_cols.iter().map(|c| c[row]).collect(), row as u32);
        }
        let from_cols: Vec<&[i64]> =
            from_columns.iter().map(|c| int_column(from, c)).collect::<Result<_>>()?;
        (0..from.rows())
            .map(|row| {
                let key: Vec<i64> = from_cols.iter().map(|c| c[row]).collect();
                index.get(&key).copied().ok_or_else(|| {
                    BdccError::BrokenPath(format!(
                        "{fk_name}: dangling composite reference from {} to {}",
                        from.name(),
                        to.name()
                    ))
                })
            })
            .collect()
    }
}

fn int_column<'a>(table: &'a StoredTable, name: &str) -> Result<&'a [i64]> {
    let col = table.column_by_name(name)?;
    col.as_i64().map_err(|_| {
        BdccError::Invalid(format!(
            "foreign-key column {}.{name} must be integer-backed",
            table.name()
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdcc_catalog::{Catalog, ColumnDef, TableDef};
    use bdcc_storage::{Column, DataType, TableBuilder};
    use std::sync::Arc;

    /// orders(o_custkey) → customer(c_custkey, c_nationkey) → nation(n_nationkey)
    fn db() -> (Database, FkId, FkId) {
        let mut cat = Catalog::new();
        let n = cat
            .create_table(TableDef {
                name: "nation".into(),
                columns: vec![ColumnDef { name: "n_nationkey".into(), data_type: DataType::Int }],
                primary_key: vec!["n_nationkey".into()],
            })
            .unwrap();
        let c = cat
            .create_table(TableDef {
                name: "customer".into(),
                columns: vec![
                    ColumnDef { name: "c_custkey".into(), data_type: DataType::Int },
                    ColumnDef { name: "c_nationkey".into(), data_type: DataType::Int },
                ],
                primary_key: vec!["c_custkey".into()],
            })
            .unwrap();
        let o = cat
            .create_table(TableDef {
                name: "orders".into(),
                columns: vec![ColumnDef { name: "o_custkey".into(), data_type: DataType::Int }],
                primary_key: vec![],
            })
            .unwrap();
        let fk_c_n = cat
            .create_foreign_key("FK_C_N", "customer", &["c_nationkey"], "nation", &["n_nationkey"])
            .unwrap();
        let fk_o_c = cat
            .create_foreign_key("FK_O_C", "orders", &["o_custkey"], "customer", &["c_custkey"])
            .unwrap();
        let mut db = Database::new(cat);
        db.attach(
            n,
            Arc::new(
                TableBuilder::new("nation")
                    .column("n_nationkey", Column::from_i64(vec![10, 20]))
                    .build()
                    .unwrap(),
            ),
        );
        db.attach(
            c,
            Arc::new(
                TableBuilder::new("customer")
                    .column("c_custkey", Column::from_i64(vec![100, 101, 102]))
                    .column("c_nationkey", Column::from_i64(vec![20, 10, 20]))
                    .build()
                    .unwrap(),
            ),
        );
        db.attach(
            o,
            Arc::new(
                TableBuilder::new("orders")
                    .column("o_custkey", Column::from_i64(vec![102, 100, 101, 100]))
                    .build()
                    .unwrap(),
            ),
        );
        (db, fk_o_c, fk_c_n)
    }

    #[test]
    fn empty_path_is_identity() {
        let (db, _, _) = db();
        let o = db.catalog().table_id("orders").unwrap();
        assert_eq!(resolve_host_rows(&db, o, &[]).unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn two_hop_path_composes() {
        let (db, fk_o_c, fk_c_n) = db();
        let o = db.catalog().table_id("orders").unwrap();
        // orders rows reference customers 102,100,101,100 → customer rows 2,0,1,0
        let one = resolve_host_rows(&db, o, &[fk_o_c]).unwrap();
        assert_eq!(one, vec![2, 0, 1, 0]);
        // customers reference nations 20,10,20 → nation rows 1,0,1;
        // composed: orders → nation rows 1,1,0,1.
        let two = resolve_host_rows(&db, o, &[fk_o_c, fk_c_n]).unwrap();
        assert_eq!(two, vec![1, 1, 0, 1]);
    }

    #[test]
    fn disconnected_path_is_rejected() {
        let (db, _, fk_c_n) = db();
        let o = db.catalog().table_id("orders").unwrap();
        assert!(resolve_host_rows(&db, o, &[fk_c_n]).is_err());
    }

    #[test]
    fn dangling_reference_is_reported() {
        let (mut db, fk_o_c, _) = db();
        let o = db.catalog().table_id("orders").unwrap();
        db.attach(
            o,
            Arc::new(
                TableBuilder::new("orders")
                    .column("o_custkey", Column::from_i64(vec![999]))
                    .build()
                    .unwrap(),
            ),
        );
        let err = resolve_host_rows(&db, o, &[fk_o_c]).unwrap_err();
        assert!(err.to_string().contains("dangling"));
    }
}
