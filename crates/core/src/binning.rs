//! Dimension creation: frequency-balanced binning (ref [4] of the paper).
//!
//! Algorithm 2(ii) creates each dimension from "a histogram on the union of
//! all tables Ti joined over dimension path Pi, projecting only the
//! dimension keys": i.e. each key value is weighted by how many tuples —
//! across *all* use sites — reference it. Equi-depth binning over that
//! weighted multiset balances group sizes under skew; equi-width binning is
//! provided as the ablation baseline.

use std::cmp::Ordering;

use bdcc_catalog::TableId;
#[cfg(test)]
use bdcc_storage::Datum;

use crate::dimension::{bits_for_bins, BinEntry, DimId, Dimension, KeyValue};
use crate::error::{BdccError, Result};

/// How bin boundaries are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinningStrategy {
    /// Balance the total *weight* (referencing tuples) per bin — the
    /// paper's frequency-based algorithm (ref [4]); robust to skew.
    EquiDepth,
    /// Split the distinct values into equally many per bin regardless of
    /// weight (ablation baseline; degrades under skew).
    EquiWidthByValue,
}

/// Dimension-creation parameters.
#[derive(Debug, Clone, Copy)]
pub struct BinningConfig {
    /// Granularity cap: `bits(D) ≤ max_bits` (the paper uses 13).
    pub max_bits: u32,
    pub strategy: BinningStrategy,
}

impl Default for BinningConfig {
    fn default() -> Self {
        BinningConfig { max_bits: 13, strategy: BinningStrategy::EquiDepth }
    }
}

/// Build a dimension from a weighted multiset of key values.
///
/// `values` need not be sorted or deduplicated; weights of equal values are
/// summed. The resulting dimension has at most `2^max_bits` bins, each a
/// consecutive value range (Definition 1(ii)–(iii)), and every input value
/// is covered (surjectivity).
pub fn create_dimension(
    id: DimId,
    name: &str,
    table: TableId,
    key: Vec<String>,
    mut values: Vec<(KeyValue, u64)>,
    config: &BinningConfig,
) -> Result<Dimension> {
    if values.is_empty() {
        return Err(BdccError::Invalid(format!("dimension {name} has no key values to bin")));
    }
    // Sort and merge duplicates.
    values.sort_by(|a, b| a.0.full_cmp(&b.0));
    let mut distinct: Vec<(KeyValue, u64)> = Vec::with_capacity(values.len());
    for (v, w) in values {
        match distinct.last_mut() {
            Some((lv, lw)) if lv.full_cmp(&v) == Ordering::Equal => *lw += w,
            _ => distinct.push((v, w)),
        }
    }
    let max_bins = 1usize << config.max_bits.min(20);
    let target_bins = distinct.len().min(max_bins);
    let bins = match config.strategy {
        BinningStrategy::EquiDepth => equi_depth(&distinct, target_bins),
        BinningStrategy::EquiWidthByValue => equi_width(&distinct, target_bins),
    };
    Ok(Dimension { id, name: name.to_string(), table, key, bins })
}

fn equi_depth(distinct: &[(KeyValue, u64)], target_bins: usize) -> Vec<BinEntry> {
    let total: u128 = distinct.iter().map(|(_, w)| *w as u128).sum();
    let mut bins = Vec::with_capacity(target_bins);
    let mut acc: u128 = 0; // weight already placed into closed bins
    let mut in_bin: u64 = 0; // weight in the currently open bin
    let mut bin_values: usize = 0;
    for (i, (v, w)) in distinct.iter().enumerate() {
        in_bin += w;
        bin_values += 1;
        let is_last_value = i == distinct.len() - 1;
        // Close the current bin once the cumulative weight reaches the next
        // equi-depth quantile; the final bin always swallows the remainder.
        let quantile_reached =
            (acc + in_bin as u128) * target_bins as u128 >= total * (bins.len() as u128 + 1);
        let may_close = bins.len() + 1 < target_bins;
        if is_last_value || (quantile_reached && may_close) {
            bins.push(BinEntry { upper: v.clone(), weight: in_bin, unique: bin_values == 1 });
            acc += in_bin as u128;
            in_bin = 0;
            bin_values = 0;
        }
    }
    bins
}

fn equi_width(distinct: &[(KeyValue, u64)], target_bins: usize) -> Vec<BinEntry> {
    let per_bin = distinct.len().div_ceil(target_bins);
    let mut bins = Vec::with_capacity(target_bins);
    for chunk in distinct.chunks(per_bin) {
        let weight = chunk.iter().map(|(_, w)| w).sum();
        bins.push(BinEntry {
            upper: chunk.last().expect("non-empty chunk").0.clone(),
            weight,
            unique: chunk.len() == 1,
        });
    }
    bins
}

/// `bits(D)` the created dimension would have for `ndv` distinct values
/// under `config` — used by design previews that have statistics but no
/// data (paper-scale reproduction of the Section IV dimension table).
pub fn bits_for_ndv(ndv: usize, config: &BinningConfig) -> u32 {
    bits_for_bins(ndv).min(config.max_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(v: i64) -> KeyValue {
        KeyValue::single(Datum::Int(v))
    }

    fn make(values: Vec<(i64, u64)>, strategy: BinningStrategy, max_bits: u32) -> Dimension {
        create_dimension(
            DimId(0),
            "D",
            TableId(0),
            vec!["k".into()],
            values.into_iter().map(|(v, w)| (kv(v), w)).collect(),
            &BinningConfig { max_bits, strategy },
        )
        .unwrap()
    }

    #[test]
    fn all_distinct_values_get_own_bins_when_they_fit() {
        let d = make((0..25).map(|v| (v, 1)).collect(), BinningStrategy::EquiDepth, 13);
        assert_eq!(d.bin_count(), 25);
        assert_eq!(d.bits(), 5); // D_NATION: 25 nations → 5 bits
        assert!(d.bins.iter().all(|b| b.unique));
    }

    #[test]
    fn bit_cap_limits_bins() {
        let d = make((0..100).map(|v| (v, 1)).collect(), BinningStrategy::EquiDepth, 3);
        assert!(d.bin_count() <= 8);
        assert!(d.bits() <= 3);
        // Every value still maps somewhere and ordering is kept.
        assert_eq!(d.bin_of(&kv(0)), 0);
        assert_eq!(d.bin_of(&kv(99)) as usize, d.bin_count() - 1);
    }

    #[test]
    fn equi_depth_balances_skewed_weights() {
        // One heavy value and many light ones.
        let mut values = vec![(0i64, 1000u64)];
        values.extend((1..101).map(|v| (v, 10)));
        let d = make(values, BinningStrategy::EquiDepth, 2); // ≤ 4 bins
        assert!(d.bin_count() <= 4);
        let weights: Vec<u64> = d.bins.iter().map(|b| b.weight).collect();
        let total: u64 = weights.iter().sum();
        assert_eq!(total, 2000);
        // The heavy value sits alone-ish: no bin should carry more than the
        // heavy value plus a modest share of the rest.
        assert!(weights[0] <= 1250, "heavy bin too large: {weights:?}");
    }

    #[test]
    fn equi_width_ignores_weights() {
        let mut values = vec![(0i64, 1000u64)];
        values.extend((1..8).map(|v| (v, 1)));
        let d = make(values, BinningStrategy::EquiWidthByValue, 2);
        assert_eq!(d.bin_count(), 4);
        // 8 distinct values / 4 bins = 2 values per bin regardless of skew.
        assert_eq!(d.bins[0].upper, kv(1));
    }

    #[test]
    fn duplicate_values_merge() {
        let d = make(vec![(5, 1), (5, 2), (7, 1)], BinningStrategy::EquiDepth, 13);
        assert_eq!(d.bin_count(), 2);
        assert_eq!(d.bins[0].weight, 3);
    }

    #[test]
    fn empty_input_is_an_error() {
        let r = create_dimension(
            DimId(0),
            "D",
            TableId(0),
            vec!["k".into()],
            vec![],
            &BinningConfig::default(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn ndv_preview_matches_paper() {
        let c = BinningConfig::default();
        assert_eq!(bits_for_ndv(25, &c), 5); // D_NATION
        assert_eq!(bits_for_ndv(20_000_000, &c), 13); // D_PART at SF100, capped
        assert_eq!(bits_for_ndv(2406, &c), 12); // D_DATE (paper rounds to 13)
    }

    #[test]
    fn bins_cover_and_order() {
        let d = make(vec![(3, 5), (9, 2), (1, 1), (7, 4)], BinningStrategy::EquiDepth, 13);
        // Sorted boundaries.
        for w in d.bins.windows(2) {
            assert_eq!(w[0].upper.full_cmp(&w[1].upper), Ordering::Less);
        }
        // Surjective: every input value has a bin and the mapping respects order.
        let bins: Vec<u64> = [1, 3, 7, 9].iter().map(|&v| d.bin_of(&kv(v))).collect();
        let mut sorted = bins.clone();
        sorted.sort();
        assert_eq!(bins, sorted);
    }
}
