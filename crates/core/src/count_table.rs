//! The count table `T_COUNT(_bdcc_, count)` (Definition 4).
//!
//! A BDCC table is stored sorted on `_bdcc_`; the count table records, per
//! distinct clustering-key value at the chosen granularity `b`, the run of
//! rows holding it. The scatter-scan computes its offsets from here, and
//! the small-group re-organization ("puff pastry" aftercare) relocates
//! groups by re-pointing their entries.

use crate::error::{BdccError, Result};

/// One group: a maximal run of rows sharing the (truncated) clustering key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupEntry {
    /// Truncated clustering key (top `granularity` bits of `_bdcc_`).
    pub key: u64,
    /// First row of the group in the stored table.
    pub start: usize,
    /// Number of rows.
    pub count: usize,
    /// True if the group was moved to the consolidated tail region by the
    /// small-group re-organization (the paper marks the *original* entry
    /// invalid and appends the copy; we re-point the entry, which is
    /// observationally identical for scans).
    pub relocated: bool,
}

/// The metadata table counting the frequency of each `_bdcc_` value at
/// granularity `b ≤ B`.
#[derive(Debug, Clone)]
pub struct CountTable {
    /// Count-table granularity `b`.
    pub granularity: u32,
    /// Full clustering-key width `B` of the stored `_bdcc_` column.
    pub total_bits: u32,
    /// Groups ordered by `key` (hence by table position, pre-relocation).
    pub groups: Vec<GroupEntry>,
}

impl CountTable {
    /// Build from the sorted full-granularity keys by counting consecutive
    /// tuples with equal `_bdcc_ >> (B − b)` — the "single ordered
    /// aggregation" of Algorithm 1(iv).
    pub fn from_sorted_keys(keys: &[u64], total_bits: u32, granularity: u32) -> Result<CountTable> {
        if granularity > total_bits {
            return Err(BdccError::Invalid(format!(
                "granularity {granularity} exceeds total bits {total_bits}"
            )));
        }
        let shift = total_bits - granularity;
        let mut groups: Vec<GroupEntry> = Vec::new();
        for (row, &k) in keys.iter().enumerate() {
            let g = k >> shift;
            match groups.last_mut() {
                Some(entry) if entry.key == g => entry.count += 1,
                _ => groups.push(GroupEntry { key: g, start: row, count: 1, relocated: false }),
            }
        }
        // Sorted input ⇒ sorted groups; verify in debug builds.
        debug_assert!(groups.windows(2).all(|w| w[0].key < w[1].key));
        Ok(CountTable { granularity, total_bits, groups })
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Total rows covered (each row exactly once, relocated or not).
    pub fn total_rows(&self) -> usize {
        self.groups.iter().map(|g| g.count).sum()
    }

    /// The group with exactly this key, if present.
    pub fn find(&self, key: u64) -> Option<&GroupEntry> {
        self.groups.binary_search_by_key(&key, |g| g.key).ok().map(|i| &self.groups[i])
    }

    /// Iterate all groups.
    pub fn iter(&self) -> impl Iterator<Item = &GroupEntry> {
        self.groups.iter()
    }

    /// Largest group size in rows.
    pub fn max_group_rows(&self) -> usize {
        self.groups.iter().map(|g| g.count).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_consecutive_runs_at_reduced_granularity() {
        // 4-bit keys; granularity 2 groups by the top 2 bits.
        let keys = [0b0000u64, 0b0001, 0b0100, 0b0101, 0b0111, 0b1100];
        let ct = CountTable::from_sorted_keys(&keys, 4, 2).unwrap();
        assert_eq!(ct.group_count(), 3);
        assert_eq!(ct.groups[0], GroupEntry { key: 0b00, start: 0, count: 2, relocated: false });
        assert_eq!(ct.groups[1], GroupEntry { key: 0b01, start: 2, count: 3, relocated: false });
        assert_eq!(ct.groups[2], GroupEntry { key: 0b11, start: 5, count: 1, relocated: false });
        assert_eq!(ct.total_rows(), 6);
        assert_eq!(ct.max_group_rows(), 3);
    }

    #[test]
    fn full_granularity_keeps_distinct_keys() {
        let keys = [1u64, 1, 2, 5];
        let ct = CountTable::from_sorted_keys(&keys, 3, 3).unwrap();
        assert_eq!(ct.group_count(), 3);
        assert_eq!(ct.find(1).unwrap().count, 2);
        assert_eq!(ct.find(5).unwrap().start, 3);
        assert!(ct.find(4).is_none());
    }

    #[test]
    fn granularity_zero_is_one_group() {
        let keys = [3u64, 9, 12];
        let ct = CountTable::from_sorted_keys(&keys, 4, 0).unwrap();
        assert_eq!(ct.group_count(), 1);
        assert_eq!(ct.groups[0].count, 3);
    }

    #[test]
    fn invalid_granularity_rejected() {
        assert!(CountTable::from_sorted_keys(&[0], 2, 3).is_err());
    }

    #[test]
    fn empty_table_yields_empty_count() {
        let ct = CountTable::from_sorted_keys(&[], 4, 2).unwrap();
        assert_eq!(ct.group_count(), 0);
        assert_eq!(ct.total_rows(), 0);
    }
}
