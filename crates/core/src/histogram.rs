//! Logarithmic group-size histograms per count-table granularity.
//!
//! During bulk-load BDCC piggy-backs an aggregation that, "for each of the
//! d·b possible count-table bit granularities", builds "a logarithmic group
//! size histogram (entry x counts groups of size [2^(x−1), 2^x))". These
//! histograms let Algorithm 1 pick a granularity whose groups stay above
//! the efficient random access size even when correlated or hierarchical
//! dimensions produce far fewer groups than 2^(d·b) ("puff pastry").

/// Group-size statistics for every granularity `0..=total_bits`.
#[derive(Debug, Clone)]
pub struct GranularityHistograms {
    pub total_bits: u32,
    /// `hist[g][x]` counts groups at granularity `g` of size in
    /// `[2^(x−1), 2^x)`; `x = floor(log2 s) + 1` for group size `s ≥ 1`.
    pub hist: Vec<Vec<u64>>,
    /// Number of groups at each granularity.
    pub group_counts: Vec<u64>,
}

impl GranularityHistograms {
    /// Build the full cascade from the sorted clustering keys (`keys` must
    /// be sorted ascending; each distinct value at granularity `total_bits`
    /// is one run).
    pub fn from_sorted_keys(keys: &[u64], total_bits: u32) -> GranularityHistograms {
        // Runs at maximal granularity.
        let mut runs: Vec<(u64, u64)> = Vec::new();
        for &k in keys {
            match runs.last_mut() {
                Some((key, n)) if *key == k => *n += 1,
                _ => runs.push((k, 1)),
            }
        }
        let mut hist = vec![Vec::new(); total_bits as usize + 1];
        let mut group_counts = vec![0u64; total_bits as usize + 1];
        // Cascade from B down to 0, merging adjacent runs that collide
        // after each 1-bit chop.
        let mut g = total_bits;
        loop {
            group_counts[g as usize] = runs.len() as u64;
            let mut h: Vec<u64> = Vec::new();
            for &(_, n) in &runs {
                let bucket = log_bucket(n);
                if h.len() <= bucket {
                    h.resize(bucket + 1, 0);
                }
                h[bucket] += 1;
            }
            hist[g as usize] = h;
            if g == 0 {
                break;
            }
            g -= 1;
            let shift = total_bits - g;
            let mut merged: Vec<(u64, u64)> = Vec::with_capacity(runs.len());
            for &(key, n) in &runs {
                let coarse = key >> shift << shift; // canonical coarse key
                match merged.last_mut() {
                    Some((k, m)) if *k == coarse => *m += n,
                    _ => merged.push((coarse, n)),
                }
            }
            runs = merged;
        }
        GranularityHistograms { total_bits, hist, group_counts }
    }

    /// Fraction of groups at granularity `g` holding at least `min_rows`
    /// rows, computed from the log histogram (conservatively: a bucket
    /// counts as "above" only if its *lower* edge `2^(x−1)` is ≥ min_rows).
    pub fn fraction_at_least(&self, g: u32, min_rows: u64) -> f64 {
        let h = &self.hist[g as usize];
        let total: u64 = h.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let above: u64 = h
            .iter()
            .enumerate()
            .filter(|&(x, _)| bucket_lower_edge(x) >= min_rows)
            .map(|(_, &c)| c)
            .sum();
        above as f64 / total as f64
    }

    /// Number of groups at granularity `g`.
    pub fn groups_at(&self, g: u32) -> u64 {
        self.group_counts[g as usize]
    }
}

/// Histogram bucket of a group of size `s ≥ 1`: `x` with
/// `s ∈ [2^(x−1), 2^x)`.
pub fn log_bucket(s: u64) -> usize {
    debug_assert!(s >= 1);
    (64 - s.leading_zeros()) as usize
}

/// Lower edge `2^(x−1)` of bucket `x` (bucket 0 is unused and returns 0).
pub fn bucket_lower_edge(x: usize) -> u64 {
    if x == 0 {
        0
    } else {
        1u64 << (x - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_follow_paper_definition() {
        assert_eq!(log_bucket(1), 1); // [1, 2)
        assert_eq!(log_bucket(2), 2); // [2, 4)
        assert_eq!(log_bucket(3), 2);
        assert_eq!(log_bucket(4), 3); // [4, 8)
        assert_eq!(bucket_lower_edge(1), 1);
        assert_eq!(bucket_lower_edge(3), 4);
    }

    #[test]
    fn cascade_counts_groups_per_granularity() {
        // 2-bit keys: 0,0,1,2,2,2,3 → groups at g=2: sizes 2,1,3,1.
        let keys = [0u64, 0, 1, 2, 2, 2, 3];
        let h = GranularityHistograms::from_sorted_keys(&keys, 2);
        assert_eq!(h.groups_at(2), 4);
        // g=1: keys>>1: 0,0,0,1,1,1,1 → 2 groups (3 and 4 rows).
        assert_eq!(h.groups_at(1), 2);
        assert_eq!(h.hist[1][2], 1); // size 3 ∈ [2,4)
        assert_eq!(h.hist[1][3], 1); // size 4 ∈ [4,8)
                                     // g=0: one group of 7.
        assert_eq!(h.groups_at(0), 1);
        assert_eq!(h.hist[0][3], 1);
    }

    #[test]
    fn missing_groups_from_correlation_are_visible() {
        // Puff pastry: 4-bit space but only 2 distinct keys occur.
        let keys = [0b0000u64, 0b0000, 0b1111, 0b1111];
        let h = GranularityHistograms::from_sorted_keys(&keys, 4);
        assert_eq!(h.groups_at(4), 2); // far fewer than 2^4
        assert_eq!(h.groups_at(1), 2);
        assert_eq!(h.groups_at(0), 1);
    }

    #[test]
    fn fraction_at_least_is_conservative() {
        let keys = [0u64, 0, 0, 0, 1, 2, 2, 3, 3, 3, 3, 3];
        // g=2 groups: 4,1,2,5.
        let h = GranularityHistograms::from_sorted_keys(&keys, 2);
        // min_rows=2: buckets with lower edge >=2: size 4 (bucket 3, edge 4),
        // size 2 (bucket 2, edge 2), size 5 (bucket 3). Size-1 group excluded.
        assert!((h.fraction_at_least(2, 2) - 0.75).abs() < 1e-9);
        assert_eq!(h.fraction_at_least(2, 1), 1.0);
        // Empty input.
        let e = GranularityHistograms::from_sorted_keys(&[], 2);
        assert_eq!(e.fraction_at_least(2, 1), 0.0);
    }

    #[test]
    fn total_rows_conserved_across_granularities() {
        let keys: Vec<u64> = (0..100).map(|i| i % 8).collect::<Vec<_>>();
        let mut sorted = keys.clone();
        sorted.sort();
        let h = GranularityHistograms::from_sorted_keys(&sorted, 3);
        for g in 0..=3 {
            let rows: u64 = h.hist[g as usize].iter().sum::<u64>();
            // groups ≤ rows and group count matches histogram mass
            assert_eq!(rows, h.groups_at(g));
        }
    }
}
