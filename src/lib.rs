//! # bdcc — Bitwise Dimensional Co-Clustering
//!
//! Umbrella crate for the reproduction of *Automatic Schema Design for
//! Co-Clustered Tables* (Baumann, Boncz, Sattler — ICDE 2013). It
//! re-exports the workspace crates:
//!
//! * [`storage`] — columnar storage, MinMax block statistics, I/O model.
//! * [`catalog`] — DDL, foreign keys, index hints, schema DAG.
//! * [`core`] — the paper's contribution: dimensions, `_bdcc_` masks,
//!   Algorithm 1 (self-tuned clustering) and Algorithm 2 (automatic schema
//!   design).
//! * [`exec`] — the vectorized executor: scatter scans, selection pushdown
//!   and propagation, sandwich join/aggregation, per-scheme planning.
//! * [`tpch`] — deterministic TPC-H generator, DDL hints and all 22
//!   queries.
//!
//! ## Quickstart
//!
//! ```
//! use bdcc::prelude::*;
//! use std::sync::Arc;
//!
//! // Generate a small TPC-H instance and auto-design the BDCC schema.
//! let db = bdcc::tpch::generate(&GenConfig::new(0.002));
//! let sdb = Arc::new(bdcc_scheme(&db, &DesignConfig::default()).unwrap());
//!
//! // Run TPC-H Q6 on the co-clustered schema.
//! let ctx = QueryCtx::new(QueryContext::new(sdb), 0.002);
//! let q6 = all_queries().into_iter().find(|q| q.id == 6).unwrap();
//! let result = (q6.run)(&ctx).unwrap();
//! assert_eq!(result.rows(), 1);
//! ```

pub use bdcc_catalog as catalog;
pub use bdcc_core as core;
pub use bdcc_exec as exec;
pub use bdcc_storage as storage;
pub use bdcc_tpch as tpch;

/// Commonly used items for examples and tests.
pub mod prelude {
    pub use bdcc_catalog::{Catalog, Database, TableId};
    pub use bdcc_core::{
        design_and_cluster, preview_design, BdccSchema, BinningConfig, BinningStrategy,
        DesignConfig, InterleaveStrategy, SelfTuneConfig,
    };
    pub use bdcc_exec::{
        bdcc_scheme, canonical_rows, pk_scheme, plain_scheme, run_measured, QueryContext, Scheme,
        SchemeDb,
    };
    pub use bdcc_storage::{Column, DataType, Datum, StoredTable};
    pub use bdcc_tpch::{all_queries, GenConfig, QueryCtx};
}
