//! Quickstart: generate a small TPC-H database, let Algorithm 2 design the
//! co-clustered schema from plain DDL + index hints, and run a query on
//! all three storage schemes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use bdcc::prelude::*;
use bdcc_exec::QueryContext;

fn main() {
    // 1. A TPC-H instance at scale factor 0.01 (~60k lineitems).
    let sf = 0.01;
    let db = bdcc::tpch::generate(&GenConfig::new(sf));
    println!("generated {} rows across 8 tables", db.total_rows());

    // 2. Automatic schema design (Algorithm 2): the only inputs are the
    //    declared foreign keys and three CREATE INDEX hints.
    let design = bdcc::core::derive_design(db.catalog(), &DesignConfig::default()).unwrap();
    println!("\nAlgorithm 2 derived {} dimensions:", design.dim_specs.len());
    for spec in &design.dim_specs {
        println!(
            "  {} over {}({})",
            spec.name,
            db.catalog().table_name(spec.table),
            spec.key.join(", ")
        );
    }

    // 3. Build the three physical schemes the paper compares.
    let plain = Arc::new(plain_scheme(&db));
    let pk = Arc::new(pk_scheme(&db).unwrap());
    let bdcc = Arc::new(bdcc_scheme(&db, &DesignConfig::default()).unwrap());

    // 4. Run TPC-H Q5 (the ASIA star join) under each scheme and compare.
    let q5 = all_queries().into_iter().find(|q| q.id == 5).unwrap();
    println!("\n{} under the three schemes:", q5.name);
    for sdb in [&plain, &pk, &bdcc] {
        let ctx = QueryCtx::new(QueryContext::new(Arc::clone(sdb)), sf);
        let t = std::time::Instant::now();
        let out = (q5.run)(&ctx).unwrap();
        println!(
            "  {:>5}: {} rows in {:>6.1} ms, peak memory {} KB, {} KB read",
            sdb.scheme.name(),
            out.rows(),
            t.elapsed().as_secs_f64() * 1000.0,
            ctx.qc.tracker.peak() / 1024,
            ctx.qc.io.stats().bytes_read / 1024,
        );
    }
}
