//! The paper's Section IV design tables as an "advisor" report: feed the
//! TPC-H DDL and the three index hints to Algorithm 2 and print the
//! dimensions and per-table dimension uses it derives — both at paper
//! scale (SF100 statistics) and on generated data.
//!
//! ```sh
//! cargo run --release --example schema_advisor
//! ```

use bdcc::prelude::*;
use bdcc_core::{mask_to_string, render_path};
use bdcc_tpch::ddl::{sf100_ndv, tpch_catalog};

fn main() {
    let cfg = DesignConfig::default();
    let catalog = tpch_catalog();

    println!("== BDCC schema advisor: TPC-H at paper scale (SF100 statistics) ==\n");
    let (dims, tables) = preview_design(&catalog, &sf100_ndv(), &cfg).unwrap();
    println!("dimensions:");
    for d in &dims {
        println!(
            "  {:<9} {:>2} bits  {}({})",
            d.name,
            d.bits,
            d.table.to_uppercase(),
            d.key.join(",")
        );
    }
    println!("\ndimension uses (cf. the paper's Section IV table):");
    for t in &tables {
        println!("  {}:", t.table.to_uppercase());
        for u in &t.uses {
            println!("    {:<9} {:<22} {}", u.dim_name, u.path, u.mask);
        }
    }

    println!("\n== The same design, measured on generated data (SF 0.01) ==\n");
    let db = bdcc::tpch::generate(&GenConfig::new(0.01));
    let schema = design_and_cluster(&db, &cfg).unwrap();
    for (tid, bt) in &schema.tables {
        println!(
            "  {:<9} B={:<2} b={:<2} groups={:<5} max group={} rows",
            db.catalog().table_name(*tid).to_uppercase(),
            bt.total_bits,
            bt.granularity,
            bt.count.group_count(),
            bt.count.max_group_rows()
        );
        for u in &bt.uses {
            println!(
                "    {:<9} {:<22} {}",
                schema.dimension(u.dim).name,
                render_path(db.catalog(), &u.path),
                mask_to_string(u.mask, bt.total_bits)
            );
        }
    }
}
