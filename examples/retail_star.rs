//! A non-TPC-H scenario: a retail star schema (sales fact, store and
//! product dimensions with a region hierarchy) designed automatically and
//! queried with selection propagation and a sandwich join — showing BDCC
//! is "not limited to typical star and snowflake schemas" but works on
//! anything with declared foreign keys and hints.
//!
//! ```sh
//! cargo run --release --example retail_star
//! ```

use std::sync::Arc;

use bdcc::prelude::*;
use bdcc_catalog::{ColumnDef, TableDef};
use bdcc_exec::{
    aggregate, join, AggFunc, AggSpec, ColPredicate, Expr, FkSide, PlanBuilder, QueryContext,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut cat = Catalog::new();
    let int = |n: &str| ColumnDef { name: n.into(), data_type: DataType::Int };
    cat.create_table(TableDef {
        name: "store".into(),
        columns: vec![int("st_key"), int("st_region"), int("st_city")],
        primary_key: vec!["st_key".into()],
    })
    .unwrap();
    cat.create_table(TableDef {
        name: "product".into(),
        columns: vec![int("pr_key"), int("pr_category")],
        primary_key: vec!["pr_key".into()],
    })
    .unwrap();
    cat.create_table(TableDef {
        name: "sales".into(),
        columns: vec![int("sa_key"), int("sa_store"), int("sa_product"), int("sa_amount")],
        primary_key: vec!["sa_key".into()],
    })
    .unwrap();
    cat.create_foreign_key("FK_SA_ST", "sales", &["sa_store"], "store", &["st_key"]).unwrap();
    cat.create_foreign_key("FK_SA_PR", "sales", &["sa_product"], "product", &["pr_key"]).unwrap();
    // Hints: a hierarchical store dimension (region major, like the
    // paper's NATION(n_regionkey, n_nationkey)), a product dimension, and
    // the fact's FK hints.
    cat.create_index("store_idx", "store", &["st_region", "st_key"]).unwrap();
    cat.create_index("product_idx", "product", &["pr_key"]).unwrap();
    cat.create_index("sa_st", "sales", &["sa_store"]).unwrap();
    cat.create_index("sa_pr", "sales", &["sa_product"]).unwrap();

    // Data: 8 regions × 8 stores, 256 products, 200k sales.
    let mut rng = StdRng::seed_from_u64(7);
    let stores = 64i64;
    let products = 256i64;
    let n = 200_000usize;
    let mut db = Database::new(cat);
    let attach = |db: &mut Database, t: StoredTable| {
        let id = db.catalog().table_id(t.name()).unwrap();
        db.attach(id, Arc::new(t));
    };
    attach(
        &mut db,
        bdcc::storage::TableBuilder::new("store")
            .column("st_key", Column::from_i64((0..stores).collect()))
            .column("st_region", Column::from_i64((0..stores).map(|k| k / 8).collect()))
            .column("st_city", Column::from_i64((0..stores).map(|k| k % 8).collect()))
            .build()
            .unwrap(),
    );
    attach(
        &mut db,
        bdcc::storage::TableBuilder::new("product")
            .column("pr_key", Column::from_i64((0..products).collect()))
            .column("pr_category", Column::from_i64((0..products).map(|k| k / 32).collect()))
            .build()
            .unwrap(),
    );
    let sa_store: Vec<i64> = (0..n).map(|_| rng.random_range(0..stores)).collect();
    let sa_product: Vec<i64> = (0..n).map(|_| rng.random_range(0..products)).collect();
    let sa_amount: Vec<i64> = (0..n).map(|_| rng.random_range(1..1000)).collect();
    attach(
        &mut db,
        bdcc::storage::TableBuilder::new("sales")
            .column("sa_key", Column::from_i64((0..n as i64).collect()))
            .column("sa_store", Column::from_i64(sa_store))
            .column("sa_product", Column::from_i64(sa_product))
            .column("sa_amount", Column::from_i64(sa_amount))
            .build()
            .unwrap(),
    );

    // Automatic design + clustering.
    let plain = Arc::new(plain_scheme(&db));
    let clustered = Arc::new(bdcc_scheme(&db, &DesignConfig::default()).unwrap());
    let schema = clustered.bdcc.as_ref().unwrap();
    println!("derived dimensions:");
    for d in &schema.dimensions {
        println!("  {} ({} bits, {} bins)", d.name, d.bits(), d.bin_count());
    }

    // Query: revenue per city for region 3 — the region selection maps to
    // a consecutive D_STORE bin range and propagates into SALES.
    let build_plan = || {
        let b = PlanBuilder::new();
        let store =
            b.scan("store", &["st_key", "st_city"], vec![ColPredicate::eq("st_region", 3i64)]);
        let sales = b.scan("sales", &["sa_store", "sa_amount"], vec![]);
        let joined =
            join(sales, store, &[("sa_store", "st_key")], Some(("FK_SA_ST", FkSide::Left)));
        aggregate(
            joined,
            &["st_city"],
            vec![AggSpec::new(AggFunc::Sum, Expr::col("sa_amount"), "revenue")],
        )
    };
    println!("\nrevenue per city of region 3:");
    for sdb in [&plain, &clustered] {
        let qc = QueryContext::new(Arc::clone(sdb));
        let (out, m) = bdcc_exec::run_measured(&qc, &build_plan()).unwrap();
        println!(
            "  {:>5}: {} rows, {:>6.1} ms, {:>6} KB read, peak memory {} KB",
            sdb.scheme.name(),
            out.rows(),
            m.seconds * 1000.0,
            m.io.bytes_read / 1024,
            m.peak_memory / 1024,
        );
    }
    println!("\nBDCC reads only region 3's co-cluster of SALES (selection propagation)");
    println!("and joins it store-group-at-a-time (sandwich join).");
}
