//! Figure 1 of the paper, reconstructed: three tables A, B, C co-clustered
//! over dimensions D1 (geography), D2 (time) and D3 (ranges). A and C are
//! not foreign-key connected yet end up co-clustered on D1 — the paper's
//! motivating observation.
//!
//! ```sh
//! cargo run --release --example figure1_schema
//! ```

use std::sync::Arc;

use bdcc::prelude::*;
use bdcc_catalog::{ColumnDef, TableDef};
use bdcc_core::mask_to_string;
use bdcc_storage::TableBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut cat = Catalog::new();
    let table = |name: &str, cols: &[&str]| TableDef {
        name: name.into(),
        columns: cols
            .iter()
            .map(|c| ColumnDef { name: c.to_string(), data_type: DataType::Int })
            .collect(),
        primary_key: vec![cols[0].to_string()],
    };
    // Dimension hosts: D1 (continents), D2 (years), D3 (value ranges).
    cat.create_table(table("d1", &["d1_key", "d1_continent"])).unwrap();
    cat.create_table(table("d2", &["d2_key", "d2_year"])).unwrap();
    cat.create_table(table("d3", &["d3_key", "d3_value"])).unwrap();
    // Fact tables: A(D1,D2), C(D1,D3), B references A and C.
    cat.create_table(table("a", &["a_key", "a_d1", "a_d2", "a_val"])).unwrap();
    cat.create_table(table("c", &["c_key", "c_d1", "c_d3", "c_val"])).unwrap();
    cat.create_table(table("b", &["b_key", "b_a", "b_c", "b_val"])).unwrap();
    cat.create_foreign_key("FK_A_D1", "a", &["a_d1"], "d1", &["d1_key"]).unwrap();
    cat.create_foreign_key("FK_A_D2", "a", &["a_d2"], "d2", &["d2_key"]).unwrap();
    cat.create_foreign_key("FK_C_D1", "c", &["c_d1"], "d1", &["d1_key"]).unwrap();
    cat.create_foreign_key("FK_C_D3", "c", &["c_d3"], "d3", &["d3_key"]).unwrap();
    cat.create_foreign_key("FK_B_A", "b", &["b_a"], "a", &["a_key"]).unwrap();
    cat.create_foreign_key("FK_B_C", "b", &["b_c"], "c", &["c_key"]).unwrap();
    // Hints: dimension keys on the hosts, FK hints on the facts.
    cat.create_index("d1_idx", "d1", &["d1_key"]).unwrap();
    cat.create_index("d2_idx", "d2", &["d2_key"]).unwrap();
    cat.create_index("d3_idx", "d3", &["d3_key"]).unwrap();
    for (idx, t, c) in [
        ("a1", "a", "a_d1"),
        ("a2", "a", "a_d2"),
        ("c1", "c", "c_d1"),
        ("c3", "c", "c_d3"),
        ("ba", "b", "b_a"),
        ("bc", "b", "b_c"),
    ] {
        cat.create_index(idx, t, &[c]).unwrap();
    }

    // Data: 4 continents, 4 years, 4 ranges; facts reference them.
    let mut db = Database::new(cat);
    let mut rng = StdRng::seed_from_u64(1);
    let attach = |db: &mut Database, t: StoredTable| {
        let id = db.catalog().table_id(t.name()).unwrap();
        db.attach(id, Arc::new(t));
    };
    for (name, key, val) in [
        ("d1", "d1_key", "d1_continent"),
        ("d2", "d2_key", "d2_year"),
        ("d3", "d3_key", "d3_value"),
    ] {
        attach(
            &mut db,
            TableBuilder::new(name)
                .column(key, Column::from_i64((0..4).collect()))
                .column(val, Column::from_i64((0..4).map(|v| v * 100).collect()))
                .build()
                .unwrap(),
        );
    }
    let n = 512;
    let mk = |rng: &mut StdRng, n: usize| -> Vec<i64> {
        (0..n).map(|_| rng.random_range(0..4)).collect()
    };
    let a_d1 = mk(&mut rng, n);
    let a_d2 = mk(&mut rng, n);
    attach(
        &mut db,
        TableBuilder::new("a")
            .column("a_key", Column::from_i64((0..n as i64).collect()))
            .column("a_d1", Column::from_i64(a_d1))
            .column("a_d2", Column::from_i64(a_d2))
            .column("a_val", Column::from_i64((0..n as i64).collect()))
            .build()
            .unwrap(),
    );
    let c_d1 = mk(&mut rng, n);
    let c_d3 = mk(&mut rng, n);
    attach(
        &mut db,
        TableBuilder::new("c")
            .column("c_key", Column::from_i64((0..n as i64).collect()))
            .column("c_d1", Column::from_i64(c_d1))
            .column("c_d3", Column::from_i64(c_d3))
            .column("c_val", Column::from_i64((0..n as i64).collect()))
            .build()
            .unwrap(),
    );
    let b_a: Vec<i64> = (0..n).map(|_| rng.random_range(0..n as i64)).collect();
    let b_c: Vec<i64> = (0..n).map(|_| rng.random_range(0..n as i64)).collect();
    attach(
        &mut db,
        TableBuilder::new("b")
            .column("b_key", Column::from_i64((0..n as i64).collect()))
            .column("b_a", Column::from_i64(b_a))
            .column("b_c", Column::from_i64(b_c))
            .column("b_val", Column::from_i64((0..n as i64).collect()))
            .build()
            .unwrap(),
    );

    // Cluster and print the derived co-clustered schema, Figure-1 style.
    // (Small AR so these tiny tables still form multiple co-clusters.)
    let mut cfg = DesignConfig::default();
    cfg.selftune.ar_bytes = 64;
    let schema = design_and_cluster(&db, &cfg).unwrap();
    println!("Figure 1 reconstruction — derived BDCC schema:\n");
    for (tid, bt) in &schema.tables {
        println!(
            "  table {} clustered on {} bits (count table at {} bits, {} groups):",
            db.catalog().table_name(*tid).to_uppercase(),
            bt.total_bits,
            bt.granularity,
            bt.count.group_count()
        );
        for u in &bt.uses {
            println!(
                "    {:<4} path {:<16} mask {}",
                schema.dimension(u.dim).name,
                bdcc::core::render_path(db.catalog(), &u.path),
                mask_to_string(u.mask, bt.total_bits)
            );
        }
    }
    println!("\nNote how A and C share dimension D_D1 although no foreign key connects them —");
    println!("exactly the paper's example of co-clustering across the whole schema.");
}
