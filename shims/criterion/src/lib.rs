//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! [`Criterion::bench_function`] runs the closure `sample_size` times
//! after one warm-up iteration and prints the minimum and mean wall-clock
//! time per iteration. There is no statistics engine, no output files and
//! no command-line interface — just honest timings on stdout, which is
//! what the experiment harness needs in a hermetic environment.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of measured iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: Vec::with_capacity(self.sample_size), n: self.sample_size };
        f(&mut b);
        let n = b.samples.len().max(1);
        let total: Duration = b.samples.iter().sum();
        let mean = total / n as u32;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        println!("{name:<50} min {:>12?}  mean {:>12?}  ({n} samples)", min, mean);
        self
    }
}

/// Passed to the benchmark closure; [`iter`](Bencher::iter) measures.
pub struct Bencher {
    samples: Vec<Duration>,
    n: usize,
}

impl Bencher {
    /// Measure `f` over the configured number of samples (after one
    /// warm-up call whose result is discarded).
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.n {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
        }
    }
}

/// Declare a benchmark group: a function running each target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_sample_size_iterations() {
        let mut count = 0usize;
        Criterion::default().sample_size(5).bench_function("t", |b| {
            b.iter(|| count += 1);
        });
        // one warm-up + five samples
        assert_eq!(count, 6);
    }
}
