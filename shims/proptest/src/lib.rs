//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The [`proptest!`] macro expands each `fn name(pat in strategy, ...)`
//! into an ordinary test that draws [`CASES`] random inputs from the
//! strategies using a deterministic per-test RNG (seeded from the test
//! name) and runs the body for each. `prop_assert!`/`prop_assert_eq!`
//! forward to the std assertions; `prop_assume!` skips the current case.
//! There is no shrinking — a failing case panics with its assertion
//! message, and determinism makes the failure reproducible.
//!
//! Supported strategies: half-open integer ranges, 2-tuples of
//! strategies, [`prop::collection::vec`], [`prop::option::of`] and
//! [`any`] for `bool` / `u64`.

use std::ops::Range;

/// Cases drawn per property test.
pub const CASES: usize = 64;

/// Deterministic RNG driving value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded from a test name, so every test draws its own fixed stream.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A generator of random values.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

/// Types with a canonical "anything" strategy ([`any`]).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Combinator namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Vec of values from `element`, with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty size range");
            VecStrategy { element, size }
        }

        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.clone().generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// `None` or `Some(inner)` with equal probability.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64() & 1 == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Arbitrary, Strategy, TestRng};
}

/// Expand property tests into case-loop tests (see crate docs).
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    // The closure gives `prop_assume!` an early-exit scope.
                    (move || { $body })();
                }
            }
        )*
    };
}

/// Assertion inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vectors(
            v in prop::collection::vec(-5i64..5, 1..10),
            flag in any::<bool>(),
            opt in prop::option::of(0usize..3),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&x| (-5..5).contains(&x)));
            let _ = flag;
            if let Some(o) = opt {
                prop_assert!(o < 3);
            }
        }

        #[test]
        fn assume_skips_cases(x in 0i64..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
