//! Offline stand-in for the subset of `rand 0.9` this workspace uses.
//!
//! Provides [`rngs::StdRng`] (a SplitMix64 generator — deterministic,
//! fast, statistically fine for data generation; **not** cryptographic),
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `random_range` / `random_bool`. Uniform integers are drawn with the
//! widening-multiply method, so there is no modulo bias.

use std::ops::{Range, RangeInclusive};

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed. Same seed → same stream.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value convenience methods over a raw `u64` source.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value in `range` (half-open or inclusive integer ranges).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 uniform mantissa bits → uniform in [0, 1).
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Ranges a uniform sample can be drawn from.
pub trait SampleRange<T> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

/// Unbiased uniform draw from `[0, span)` via widening multiply.
fn uniform_below<R: Rng>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = r.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w: usize = r.random_range(0usize..3);
            assert!(w < 3);
            let x: i64 = r.random_range(1i64..=6);
            assert!((1..=6).contains(&x));
        }
    }

    #[test]
    fn all_values_reachable() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[r.random_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!(!r.random_bool(0.0));
        assert!(r.random_bool(1.0));
    }
}
